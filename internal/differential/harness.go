package differential

import (
	"errors"
	"fmt"

	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
	"repro/internal/workload"
)

// DatalogCase is one cross-check unit: a program and a query goal.
type DatalogCase struct {
	Seed    int64
	Family  workload.DatalogFamily
	Program *datalog.Program
	Goal    datalog.Atom
}

// MultiLogCase is one cross-check unit: a database, a user level, and a
// conjunctive query.
type MultiLogCase struct {
	Seed     int64
	DB       *multilog.Database
	Source   string
	User     lattice.Label
	Query    multilog.Query
	QuerySrc string
}

// DatalogPrograms generates n seeded programs cycling through the families,
// each paired with its family's query goals.
func DatalogPrograms(seed int64, n int) []DatalogCase {
	var out []DatalogCase
	for i := 0; i < n; i++ {
		cfg := workload.DatalogConfig{
			Family: workload.DatalogFamily(i % workload.NumDatalogFamilies),
			Size:   3 + (i/workload.NumDatalogFamilies)%8,
			Seed:   seed + int64(i),
		}
		prog, goals := workload.DatalogProgram(cfg)
		for _, g := range goals {
			out = append(out, DatalogCase{Seed: cfg.Seed, Family: cfg.Family, Program: prog, Goal: g})
		}
	}
	return out
}

// MultiLogPrograms generates n seeded databases (chains of 2-4 levels with
// polyinstantiation) and pairs each with probe queries spanning m-atoms,
// all three belief modes, derived predicates, and a variable-level goal, at
// every user level.
func MultiLogPrograms(seed int64, n int) []MultiLogCase {
	var out []MultiLogCase
	for i := 0; i < n; i++ {
		cfg := workload.ProgramConfig{
			Levels: 2 + i%3,
			Facts:  3 + i%5,
			Rules:  1 + i%3,
			Preds:  2,
			Poly:   0.5,
			Seed:   seed + int64(i),
		}
		src := workload.ProgramSource(cfg)
		db, err := multilog.Parse(src)
		if err != nil {
			//vet:allow nopanic -- a generator bug must abort the fuzz run loudly
			panic(fmt.Sprintf("differential: generator emitted unparsable program:\n%s\n%v", src, err))
		}
		var probes []string
		for l := 0; l < cfg.Levels; l++ {
			lvl := workload.Level(l)
			probes = append(probes,
				fmt.Sprintf("%s[p0(K: a -C-> V)]", lvl),
				fmt.Sprintf("%s[p0(K: a -C-> V)] << fir", lvl),
				fmt.Sprintf("%s[p0(K: a -C-> V)] << opt", lvl),
				fmt.Sprintf("%s[p1(K: a -C-> V)] << cau", lvl),
				fmt.Sprintf("%s[q0(K: d -C-> V)]", lvl),
			)
		}
		probes = append(probes, "L[p0(K: a -C-> V)] << opt")
		for l := 0; l < cfg.Levels; l++ {
			user := workload.Level(l)
			for _, probe := range probes {
				q, err := multilog.ParseGoals(probe)
				if err != nil {
					//vet:allow nopanic -- a malformed probe is a harness bug, not a test failure
					panic(fmt.Sprintf("differential: bad probe %q: %v", probe, err))
				}
				out = append(out, MultiLogCase{
					Seed: cfg.Seed, DB: db, Source: src,
					User: user, Query: q, QuerySrc: probe,
				})
			}
		}
	}
	return out
}

// outcome is one oracle's verdict on a case.
type outcome struct {
	result Result
	err    error
}

func (o outcome) String() string {
	if o.err != nil {
		return "error: " + o.err.Error()
	}
	return o.result.String()
}

// compareOutcomes applies the agreement policy: unsupported oracles are
// skipped; if every oracle hard-errors the case counts as (consistent)
// rejection; otherwise any hard error or any differing supported result is
// a disagreement. It returns the names of the disagreeing oracles.
func compareOutcomes(names []string, outs []outcome) []string {
	ref := -1
	for i, o := range outs {
		if o.err == nil {
			ref = i
			break
		}
	}
	if ref < 0 {
		return nil // every oracle rejected the case; consistent
	}
	var bad []string
	for i, o := range outs {
		if i == ref {
			continue
		}
		switch {
		case errors.Is(o.err, ErrUnsupported):
			// skipped
		case o.err != nil:
			bad = append(bad, names[i])
		case !o.result.Equal(outs[ref].result):
			bad = append(bad, names[i])
		}
	}
	return bad
}

// runDatalogOracles evaluates every oracle on the case.
func runDatalogOracles(p *datalog.Program, goal datalog.Atom) ([]string, []outcome) {
	oracles := DatalogOracles()
	names := make([]string, len(oracles))
	outs := make([]outcome, len(oracles))
	for i, o := range oracles {
		names[i] = o.Name()
		r, err := o.Answer(p, goal)
		outs[i] = outcome{result: r, err: err}
	}
	return names, outs
}

// datalogDisagrees reports whether the oracle set disagrees on (p, goal).
// It is the shrinker's failure predicate.
func datalogDisagrees(p *datalog.Program, goal datalog.Atom) bool {
	names, outs := runDatalogOracles(p, goal)
	return len(compareOutcomes(names, outs)) > 0
}

// CheckDatalog cross-checks one case against every Datalog oracle. On
// disagreement it shrinks the program to a minimal counterexample and
// returns the report; nil means all oracles agree.
func CheckDatalog(c DatalogCase) *Disagreement {
	names, outs := runDatalogOracles(c.Program, c.Goal)
	bad := compareOutcomes(names, outs)
	if len(bad) == 0 {
		return nil
	}
	minimal := ShrinkDatalog(c.Program, func(p *datalog.Program) bool {
		return datalogDisagrees(p, c.Goal)
	})
	mnames, mouts := runDatalogOracles(minimal, c.Goal)
	d := &Disagreement{
		Kind:      "datalog",
		Seed:      c.Seed,
		Family:    c.Family.String(),
		Source:    minimal.String(),
		Query:     c.Goal.String(),
		Disagrees: bad,
		Results:   map[string]string{},
	}
	for i, n := range mnames {
		d.Results[n] = mouts[i].String()
	}
	return d
}

func runMultiLogOracles(db *multilog.Database, user lattice.Label, q multilog.Query) ([]string, []outcome) {
	oracles := MultiLogOracles()
	names := make([]string, len(oracles))
	outs := make([]outcome, len(oracles))
	for i, o := range oracles {
		names[i] = o.Name()
		r, err := o.Answer(db, user, q)
		outs[i] = outcome{result: r, err: err}
	}
	return names, outs
}

func multilogDisagrees(db *multilog.Database, user lattice.Label, q multilog.Query) bool {
	names, outs := runMultiLogOracles(db, user, q)
	return len(compareOutcomes(names, outs)) > 0
}

// CheckMultiLog cross-checks one case against both MultiLog semantics,
// shrinking the database on disagreement. nil means Theorem 6.1 held.
func CheckMultiLog(c MultiLogCase) *Disagreement {
	names, outs := runMultiLogOracles(c.DB, c.User, c.Query)
	bad := compareOutcomes(names, outs)
	if len(bad) == 0 {
		return nil
	}
	minimal := ShrinkMultiLog(c.DB, func(db *multilog.Database) bool {
		return multilogDisagrees(db, c.User, c.Query)
	})
	mnames, mouts := runMultiLogOracles(minimal, c.User, c.Query)
	d := &Disagreement{
		Kind:      "multilog",
		Seed:      c.Seed,
		Family:    "multilog",
		Source:    minimal.String(),
		Query:     c.QuerySrc,
		User:      string(c.User),
		Disagrees: bad,
		Results:   map[string]string{},
	}
	for i, n := range mnames {
		d.Results[n] = mouts[i].String()
	}
	return d
}

// CampaignResult summarizes a cross-check campaign.
type CampaignResult struct {
	Programs      int
	Cases         int
	Disagreements []*Disagreement
}

// RunDatalogCampaign cross-checks n seeded Datalog programs (each with its
// family's query goals) against all oracles.
func RunDatalogCampaign(seed int64, n int) CampaignResult {
	res := CampaignResult{Programs: n}
	for _, c := range DatalogPrograms(seed, n) {
		res.Cases++
		if d := CheckDatalog(c); d != nil {
			res.Disagreements = append(res.Disagreements, d)
		}
	}
	return res
}

// RunMultiLogCampaign cross-checks n seeded MultiLog databases at every
// user level against both semantics.
func RunMultiLogCampaign(seed int64, n int) CampaignResult {
	res := CampaignResult{Programs: n}
	for _, c := range MultiLogPrograms(seed, n) {
		res.Cases++
		if d := CheckMultiLog(c); d != nil {
			res.Disagreements = append(res.Disagreements, d)
		}
	}
	return res
}
