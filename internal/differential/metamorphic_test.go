package differential

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// Fact-addition monotonicity over every negation-free generated family.
func TestMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, c := range DatalogPrograms(11, 40) {
		if err := CheckMonotonicity(c.Program, c.Goal, r); err != nil {
			t.Errorf("family %s seed %d: %v", c.Family, c.Seed, err)
		}
	}
}

// View coherence under label dominance: a higher-cleared user sees a
// superset of every lower user's answers, for every probe query of every
// generated database.
func TestDominanceCoherence(t *testing.T) {
	checked := map[string]bool{}
	for _, c := range MultiLogPrograms(13, 15) {
		// The property quantifies over all users itself; dedup per
		// (program, query).
		key := c.Source + "|" + c.QuerySrc
		if checked[key] {
			continue
		}
		checked[key] = true
		if err := CheckDominanceCoherence(c); err != nil {
			t.Errorf("seed %d: %v", c.Seed, err)
		}
	}
}

// Proposition 6.1: every negation-free generated Datalog program, embedded
// as a MultiLog database with a single level and empty security components,
// answers identically under plain Datalog, the operational prover, and the
// reduction.
func TestEmbeddingProposition61(t *testing.T) {
	for _, c := range DatalogPrograms(17, 40) {
		// Skip the families built around cyclic data: the goal-directed
		// prover has no tabling, so its depth bound fires and the oracle
		// is skipped anyway; checking the terminating families keeps the
		// property sharp.
		if c.Family == workload.FamGraphTC {
			continue
		}
		if err := CheckEmbedding(c.Program, c.Goal); err != nil {
			t.Errorf("family %s seed %d: %v", c.Family, c.Seed, err)
		}
	}
}
