package differential

import (
	"testing"

	"repro/internal/datalog"
)

// Dead-rule soundness over the generated families: for every case, removing
// the rules the linter marks dead (DL007) changes no oracle's answers.
func TestDeadRulesSoundOnGeneratedPrograms(t *testing.T) {
	for _, c := range DatalogPrograms(17, 40) {
		if err := CheckDeadRules(c.Program, c.Goal); err != nil {
			t.Errorf("family %s seed %d: %v", c.Family, c.Seed, err)
		}
	}
}

// Handcrafted programs where the dead set is known and non-empty: the
// check must both find them removable and leave live answers intact.
func TestDeadRulesSoundOnHandcrafted(t *testing.T) {
	cases := []struct {
		name, src, goal string
	}{
		{
			name: "transitive death",
			src: `
				p(a). p(b).
				ghost(X) :- phantom(X).
				spectre(X) :- ghost(X), p(X).
				live(X) :- p(X).
			`,
			goal: "live(X)",
		},
		{
			name: "dead rule shadowed by a live fact",
			src: `
				q(a).
				q(X) :- phantom(X).
				r(X) :- q(X).
			`,
			goal: "r(X)",
		},
		{
			name: "negation keeps the rule live",
			src: `
				p(a).
				alive(X) :- p(X), not phantom(X).
				ghost(X) :- phantom(X), p(X).
			`,
			goal: "alive(X)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := datalog.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			g, err := datalog.ParseAtom(tc.goal)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckDeadRules(p, g); err != nil {
				t.Error(err)
			}
		})
	}
}
