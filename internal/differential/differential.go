// Package differential is the cross-engine differential-testing and fuzzing
// subsystem. The repo holds eight independent implementations that the
// paper's central results say must agree: six Datalog evaluation strategies
// (naive, semi-naive, parallel semi-naive, magic sets, SLD, tabled) and the
// two MultiLog semantics (the Figure 9 operational prover and the Figure 12
// reduction, equal by Theorem 6.1). This package wraps each behind an
// Oracle interface, generates seeded randomized program families, runs
// N-way cross-checks plus metamorphic properties (fact-addition
// monotonicity, view coherence under label dominance, the Proposition 6.1
// empty-security embedding), and shrinks any disagreement to a minimal
// counterexample via delta debugging, emitting a ready-to-paste regression
// test. cmd/difffuzz drives long campaigns; the Fuzz* targets hook the same
// checks into go test's native fuzzer.
package differential

import (
	"sort"
	"strings"

	"repro/internal/term"
)

// Result is a canonicalized answer set: the query's bindings rendered as
// sorted, deduplicated strings. Engines may enumerate answers in any order;
// two engines agree iff their Results are Equal.
type Result struct {
	Tuples []string
}

// NewResult canonicalizes a list of rendered bindings.
func NewResult(tuples []string) Result {
	sort.Strings(tuples)
	out := tuples[:0]
	for i, t := range tuples {
		if i == 0 || t != tuples[i-1] {
			out = append(out, t)
		}
	}
	return Result{Tuples: out}
}

// substResult canonicalizes a list of substitutions.
func substResult(subs []term.Subst) Result {
	tuples := make([]string, len(subs))
	for i, s := range subs {
		tuples[i] = s.String()
	}
	return NewResult(tuples)
}

// Len returns the number of distinct answers.
func (r Result) Len() int { return len(r.Tuples) }

// Equal reports whether two canonical answer sets coincide.
func (r Result) Equal(o Result) bool {
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	for i := range r.Tuples {
		if r.Tuples[i] != o.Tuples[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every answer of r also appears in o.
func (r Result) Subset(o Result) bool {
	have := make(map[string]bool, len(o.Tuples))
	for _, t := range o.Tuples {
		have[t] = true
	}
	for _, t := range r.Tuples {
		if !have[t] {
			return false
		}
	}
	return true
}

// String renders the answer set on one line.
func (r Result) String() string {
	if len(r.Tuples) == 0 {
		return "∅"
	}
	return strings.Join(r.Tuples, " ")
}
