package differential

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/multilog"
	"repro/internal/term"
)

// FuzzParseDatalog checks the Datalog parser never panics and that whatever
// it accepts round-trips: the printed form must reparse to the same printed
// form (printing is the canonical form, so one round is a fixpoint).
func FuzzParseDatalog(f *testing.F) {
	f.Add("p(a).\nq(X) :- p(X).")
	f.Add("tc(X, Z) :- e(X, Y), tc(Y, Z).\n?- tc(a, Z).")
	f.Add("r(X) :- n(X), not m(X), X != a.")
	f.Add("p(f(g(a), X)).")
	f.Add("% comment\np().")
	f.Add("p(a) :- .")
	f.Add("p('unterminated")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := datalog.Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := datalog.Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\noriginal: %q\nprinted:\n%s", err, src, printed)
		}
		if got := p2.String(); got != printed {
			t.Fatalf("print/parse/print not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, got)
		}
	})
}

// FuzzParseMultiLog checks the MultiLog parser never panics and that
// accepted databases round-trip through Database.String.
func FuzzParseMultiLog(f *testing.F) {
	f.Add("level(u).\nu[p(k: a -u-> v)].")
	f.Add("level(u). level(s). order(u, s).\ns[p(k: a -u-> v)] :- u[p(k: a -u-> v)] << cau.")
	f.Add("?- L[p(K: a -C-> V)] << opt.")
	f.Add("u[p(k: a -u-> 'oops)]")
	f.Add("u[p(: -> )].")
	f.Fuzz(func(t *testing.T, src string) {
		db, err := multilog.Parse(src)
		if err != nil {
			return
		}
		printed := db.String()
		db2, err := multilog.Parse(printed)
		if err != nil {
			t.Fatalf("accepted database does not reparse: %v\noriginal: %q\nprinted:\n%s", err, src, printed)
		}
		if got := db2.String(); got != printed {
			t.Fatalf("print/parse/print not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, got)
		}
	})
}

// fuzzableDatalog reports whether a parsed program is safe to hand to every
// oracle with a termination guarantee: validated (range-restricted,
// stratified), compound-free (compound terms make the Herbrand universe
// infinite, so bottom-up evaluation need not terminate), and small enough
// that the slowest engine stays inside the fuzz iteration budget.
func fuzzableDatalog(p *datalog.Program) bool {
	if len(p.Clauses) > 20 || datalog.Validate(p) != nil {
		return false
	}
	// Validate checks safety but not stratifiability; an unstratifiable
	// program is outside the engines' shared contract (bottom-up rejects it
	// whole, goal-directed engines can still answer goals that avoid the
	// bad cycle), so it is not a differential case.
	if _, err := datalog.Strata(p); err != nil {
		return false
	}
	atomOK := func(a datalog.Atom) bool {
		if len(a.Args) > 4 {
			return false
		}
		for _, t := range a.Args {
			if t.Kind() == term.KindCompound {
				return false
			}
		}
		return true
	}
	for _, c := range p.Clauses {
		if len(c.Body) > 5 || !atomOK(c.Head) {
			return false
		}
		for _, l := range c.Body {
			if !atomOK(l.Atom) {
				return false
			}
		}
	}
	for _, q := range p.Queries {
		if !atomOK(q) {
			return false
		}
	}
	return true
}

// FuzzCrossEngine is the differential fuzz target: any parseable, validated,
// compound-free Datalog program the fuzzer invents is cross-checked over all
// six evaluation strategies. Queries come from the program's own ?- goals
// when present, plus an open goal per derived predicate.
func FuzzCrossEngine(f *testing.F) {
	f.Add("e(a, b). e(b, c). e(c, a).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).\n?- tc(a, X).")
	f.Add("node(a). node(b). e(a, b).\nreach(X) :- e(a, X).\nreach(Y) :- reach(X), e(X, Y).\nunreached(X) :- node(X), not reach(X).")
	f.Add("p(a). p(b). q(a).\nr(X, Y) :- p(X), p(Y), X != Y, not q(X).")
	f.Add("par(a, b). par(b, c).\nsg(X, X) :- par(X, Y).\nsg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n?- sg(a, Y).")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := datalog.Parse(src)
		if err != nil || !fuzzableDatalog(p) {
			return
		}
		goals := append([]datalog.Atom(nil), p.Queries...)
		seen := map[string]bool{}
		for _, c := range p.Clauses {
			if len(c.Body) == 0 {
				continue // facts answer trivially; derived predicates are the interesting ones
			}
			key := c.Head.Pred
			if seen[key] {
				continue
			}
			seen[key] = true
			args := make([]term.Term, len(c.Head.Args))
			for i := range args {
				args[i] = term.Var(freshVarName(i))
			}
			goals = append(goals, datalog.NewAtom(c.Head.Pred, args...))
		}
		for _, g := range goals {
			names, outs := runDatalogOracles(p, g)
			if bad := compareOutcomes(names, outs); len(bad) > 0 {
				minimal := ShrinkDatalog(p, func(sp *datalog.Program) bool {
					return datalogDisagrees(sp, g)
				})
				t.Fatalf("oracles %v disagree on %s\nminimal program:\n%s\noutcomes:\n%s",
					bad, g, minimal, renderOutcomes(runDatalogOracles(minimal, g)))
			}
		}
	})
}

func freshVarName(i int) string {
	return "FZ" + strings.Repeat("Z", i%5) + string(rune('A'+i%26))
}
