package differential

import (
	"fmt"
	"sort"
	"strings"
)

// Disagreement is a cross-engine counterexample, already shrunk to a
// (locally) minimal program by delta debugging.
type Disagreement struct {
	Kind      string            // "datalog" or "multilog"
	Seed      int64             // generator seed that produced the original case
	Family    string            // program family
	Source    string            // minimized program source
	Query     string            // query goal(s) in surface syntax
	User      string            // user level (multilog only)
	Disagrees []string          // oracles that differ from the reference
	Results   map[string]string // oracle name -> rendered result or error
}

// Report renders the counterexample for humans: the minimal program, the
// query, and every oracle's answer.
func (d *Disagreement) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DISAGREEMENT kind=%s family=%s seed=%d\n", d.Kind, d.Family, d.Seed)
	if d.User != "" {
		fmt.Fprintf(&b, "user: %s\n", d.User)
	}
	fmt.Fprintf(&b, "query: %s\n", d.Query)
	fmt.Fprintf(&b, "disagreeing oracles: %s\n", strings.Join(d.Disagrees, ", "))
	b.WriteString("minimal program:\n")
	for _, line := range strings.Split(strings.TrimRight(d.Source, "\n"), "\n") {
		b.WriteString("    " + line + "\n")
	}
	names := make([]string, 0, len(d.Results))
	for n := range d.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("answers:\n")
	for _, n := range names {
		fmt.Fprintf(&b, "    %-12s %s\n", n, d.Results[n])
	}
	return b.String()
}

// RegressionTest emits a ready-to-paste Go test (for
// internal/differential/regressions_test.go) that replays the minimal
// counterexample through the full oracle set.
func (d *Disagreement) RegressionTest(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Regression: %s family=%s seed=%d — oracles disagreed: %s.\n",
		d.Kind, d.Family, d.Seed, strings.Join(d.Disagrees, ", "))
	fmt.Fprintf(&b, "func TestRegression%s(t *testing.T) {\n", name)
	fmt.Fprintf(&b, "\tconst src = `\n%s`\n", d.Source)
	switch d.Kind {
	case "multilog":
		fmt.Fprintf(&b, "\tAssertMultiLogAgreement(t, src, %q, %q)\n", d.User, d.Query)
	default:
		fmt.Fprintf(&b, "\tAssertDatalogAgreement(t, src, %q)\n", d.Query)
	}
	b.WriteString("}\n")
	return b.String()
}
