package differential

import (
	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
)

// TB is the subset of *testing.T the assert helpers need, kept as an
// interface so this non-test file does not import package testing.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// AssertDatalogAgreement parses a Datalog program and a query goal and
// fails the test unless every oracle agrees. Emitted regression tests call
// this, so a found counterexample stays one paste away from CI.
func AssertDatalogAgreement(t TB, src, querySrc string) {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	goal, err := datalog.ParseAtom(querySrc)
	if err != nil {
		t.Fatalf("parse goal %q: %v", querySrc, err)
	}
	names, outs := runDatalogOracles(p, goal)
	if bad := compareOutcomes(names, outs); len(bad) > 0 {
		t.Fatalf("oracles disagree on %s:\n%s", querySrc, renderOutcomes(names, outs))
	}
}

// AssertMultiLogAgreement parses a MultiLog database and a query and fails
// the test unless the operational prover and the reduction agree at the
// given user level (Theorem 6.1 on one concrete instance).
func AssertMultiLogAgreement(t TB, src, user, querySrc string) {
	t.Helper()
	db, err := multilog.Parse(src)
	if err != nil {
		t.Fatalf("parse database: %v", err)
	}
	q, err := multilog.ParseGoals(querySrc)
	if err != nil {
		t.Fatalf("parse query %q: %v", querySrc, err)
	}
	names, outs := runMultiLogOracles(db, lattice.Label(user), q)
	if bad := compareOutcomes(names, outs); len(bad) > 0 {
		t.Fatalf("semantics disagree on %s at user %s:\n%s", querySrc, user, renderOutcomes(names, outs))
	}
}

func renderOutcomes(names []string, outs []outcome) string {
	out := ""
	for i, n := range names {
		out += "  " + n + ": " + outs[i].String() + "\n"
	}
	return out
}
