package differential

import (
	"testing"
	"time"
)

// TestFlowCampaign is the standing gate for the information-flow analysis:
// on generated databases, every predicate the analysis claims
// clearance-independent must answer fixed-bottom-level probes byte-equally
// across all clearances and belief modes through the Figure 12 reduction,
// and every predicate whose answers demonstrably vary must not carry the
// claim. Sharded into parallel subtests so the race-enabled CI tier
// exercises concurrent reductions and analyses.
func TestFlowCampaign(t *testing.T) {
	programs, shards := 52, 4
	if testing.Short() {
		programs, shards = 8, 2
	}
	start := time.Now()
	results := make([]FlowCampaignResult, shards)
	t.Run("shards", func(t *testing.T) {
		for s := 0; s < shards; s++ {
			s := s
			t.Run("", func(t *testing.T) {
				t.Parallel()
				results[s] = RunFlowCampaign(int64(9000+s*programs), programs)
			})
		}
	})
	total := FlowCampaignResult{}
	for _, res := range results {
		total.Programs += res.Programs
		total.Preds += res.Preds
		total.Independent += res.Independent
		total.Dependent += res.Dependent
		total.Varied += res.Varied
		total.Probes += res.Probes
		total.Violations = append(total.Violations, res.Violations...)
	}
	for _, v := range total.Violations {
		t.Errorf("clearance-independence claim falsified:\n%s", v.Report())
	}
	t.Logf("flow campaign: %d programs, %d preds (%d independent, %d dependent, %d varied), %d probes in %v",
		total.Programs, total.Preds, total.Independent, total.Dependent,
		total.Varied, total.Probes, time.Since(start))
	if total.Independent == 0 {
		t.Error("campaign never exercised a claimed-independent predicate; the check is vacuous")
	}
	if total.Dependent == 0 {
		t.Error("campaign never exercised a clearance-dependent predicate")
	}
	if total.Varied == 0 {
		t.Error("no predicate's answers varied across clearances; the equality check proves nothing")
	}
	if !testing.Short() && total.Programs < 200 {
		t.Errorf("campaign covered %d programs, want ≥ 200", total.Programs)
	}
}

// The flow-case generator is seeded: identical seeds must produce identical
// programs so a violation's seed reproduces it.
func TestFlowCasesDeterministic(t *testing.T) {
	a, b := flowCases(7, 12), flowCases(7, 12)
	if len(a) != len(b) {
		t.Fatalf("case counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].src != b[i].src {
			t.Fatalf("case %d differs between identically-seeded runs", i)
		}
	}
}
