package differential

// Permanent cross-engine regression tests. Protocol: when a campaign or
// fuzz run reports a Disagreement, paste the output of
// d.RegressionTest("Name") into this file so the minimal counterexample is
// re-checked forever. TestRegressionFloundering below came out of exactly
// that loop; the remaining cases promote the hardest hand-identified
// programs, each pinning a spot where two engines could plausibly diverge.

import "testing"

// Found by FuzzCrossEngine (corpus entry 7ddeefa046def2b7): the body order
// `a(0), not b(Y), a(Y)` is range-restricted but made SLD and tabling
// flounder on the negation and broke the magic rewrite's prefix cuts,
// while the bottom-up engines — which pick body literals dynamically —
// answered. Fixed by orderBody (negation and '!=' deferred behind the
// positive literals) in all three source-order engines.
func TestRegressionFlounderingBodyOrder(t *testing.T) {
	const src = `
		a(0). p(0).
		a() :- a(0), not b(Y), a(Y).
	`
	AssertDatalogAgreement(t, src, "a()")
	// Same shape with '!=' instead of negation.
	AssertDatalogAgreement(t, `
		a(0). a(1).
		c(X) :- X != Y, a(X), a(Y).
	`, "c(X)")
}

// Figure 10's D1 — the paper's own worked example, including the cautious
// derivation r8 that once distinguished the a6-a9 axiom encodings.
func TestRegressionD1AllLevels(t *testing.T) {
	const src = `
		level(u).  level(c).  level(s).
		order(u, c).  order(c, s).
		u[p(k: a -u-> v)].
		c[p(k: a -c-> t)] :- q(j).
		s[p(k: a -u-> v)] :- c[p(k: a -c-> t)] << cau.
		q(j).
	`
	for _, user := range []string{"u", "c", "s"} {
		AssertMultiLogAgreement(t, src, user, "c[p(k: a -R-> v)] << opt")
		AssertMultiLogAgreement(t, src, user, "L[p(k: a -C-> V)] << cau")
		AssertMultiLogAgreement(t, src, user, "s[p(K: a -C-> V)]")
	}
}

// Polyinstantiation with an incomparable diamond: the cautious mode's
// no-competitor search must adjudicate identically in both semantics even
// when the rival classifications are incomparable.
func TestRegressionDiamondPolyinstantiation(t *testing.T) {
	const src = `
		level(lo). level(left). level(right). level(top).
		order(lo, left). order(lo, right). order(left, top). order(right, top).
		lo[p(k: a -lo-> base)].
		left[p(k: a -left-> coverl)].
		right[p(k: a -right-> coverr)].
	`
	for _, user := range []string{"lo", "left", "right", "top"} {
		for _, mode := range []string{"fir", "opt", "cau"} {
			AssertMultiLogAgreement(t, src, user, "L[p(k: a -C-> V)] << "+mode)
		}
	}
}

// Empty security components (Proposition 6.1 edge): a database whose Σ is
// empty is plain Datalog, and both semantics must see exactly the classical
// answers.
func TestRegressionEmptySecurityComponents(t *testing.T) {
	const src = `
		level(l0).
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`
	AssertMultiLogAgreement(t, src, "l0", "path(a, X)")
	AssertMultiLogAgreement(t, src, "l0", "path(X, Y)")
}

// Left recursion over cyclic data: bottom-up, magic, and tabled agree;
// plain SLD exhausts its budget and is skipped rather than wrong.
func TestRegressionLeftRecursiveCycle(t *testing.T) {
	const src = `
		e(a, b). e(b, c). e(c, a).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
	`
	AssertDatalogAgreement(t, src, "tc(a, X)")
	AssertDatalogAgreement(t, src, "tc(X, Y)")
}

// The minimal program TestShrinkInjectedFault converges to: the smallest
// stratified-negation program where dropping NAF changes the answer. All
// real engines must agree on it (only the deliberately broken test engine
// diverges).
func TestRegressionMinimalNegation(t *testing.T) {
	const src = `
		node(n3).
		e(n0, n3).
		reach(Y) :- e(X, Y).
		unreached(X) :- node(X), not reach(X).
	`
	AssertDatalogAgreement(t, src, "unreached(X)")
	AssertDatalogAgreement(t, src, "reach(X)")
}

// Negation plus built-ins across strata: '!=' grounding order differs
// between top-down and bottom-up engines.
func TestRegressionNegationBuiltins(t *testing.T) {
	const src = `
		p(a). p(b). p(c).
		q(a).
		rest(X) :- p(X), not q(X).
		pair(X, Y) :- rest(X), rest(Y), X != Y.
	`
	AssertDatalogAgreement(t, src, "pair(X, Y)")
	AssertDatalogAgreement(t, src, "rest(X)")
}
