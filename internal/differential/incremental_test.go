package differential

import (
	"testing"
	"time"

	"repro/internal/datalog"
)

// TestIncrementalCampaign is the standing gate for the maintenance engine:
// a seeded campaign of generated (program, write sequence) cases where the
// incrementally patched model and its derivation counts are checked against
// full re-derivation after every single delta. Sharded into parallel
// subtests so the race-enabled CI tier exercises concurrent engine
// instances.
func TestIncrementalCampaign(t *testing.T) {
	programs, shards := 60, 4
	if testing.Short() {
		programs, shards = 16, 2
	}
	start := time.Now()
	results := make([]CampaignResult, shards)
	t.Run("shards", func(t *testing.T) {
		for s := 0; s < shards; s++ {
			s := s
			t.Run("", func(t *testing.T) {
				t.Parallel()
				results[s] = RunIncrementalCampaign(int64(1000+s*programs), programs)
			})
		}
	})
	total := CampaignResult{}
	for _, res := range results {
		total.Programs += res.Programs
		total.Cases += res.Cases
		total.Disagreements = append(total.Disagreements, res.Disagreements...)
	}
	for _, d := range total.Disagreements {
		t.Errorf("incremental maintenance diverged from full re-derivation:\n%s", d.Report())
	}
	t.Logf("incremental campaign: %d programs, %d maintained deltas in %v",
		total.Programs, total.Cases, time.Since(start))
	if !testing.Short() && total.Cases < 200 {
		t.Errorf("campaign covered %d delta cases, want ≥ 200", total.Cases)
	}
}

// The write-sequence generator is seeded: identical seeds must produce
// identical cases, so a counterexample's seed reproduces it.
func TestIncrementalCasesDeterministic(t *testing.T) {
	a := IncrementalCases(7, 10)
	b := IncrementalCases(7, 10)
	if len(a) != len(b) {
		t.Fatalf("case counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Program.String() != b[i].Program.String() ||
			renderWrites(a[i].Writes) != renderWrites(b[i].Writes) {
			t.Fatalf("case %d differs between identically-seeded runs", i)
		}
	}
}

// ddmin over write sequences must land on a 1-minimal failing subsequence.
func TestShrinkWriteSequence(t *testing.T) {
	cases := IncrementalCases(3, 1)
	writes := cases[0].Writes
	if len(writes) < 3 {
		t.Fatalf("generator produced only %d writes", len(writes))
	}
	// Synthetic failure: the sequence "fails" iff it retains both the first
	// and the last op. ddmin must strip everything else.
	first, last := writes[0].String(), writes[len(writes)-1].String()
	if first == last {
		t.Skip("degenerate sequence: endpoints render identically")
	}
	fails := func(ws []WriteOp) bool {
		var hasFirst, hasLast bool
		for _, w := range ws {
			if w.String() == first {
				hasFirst = true
			}
			if w.String() == last {
				hasLast = true
			}
		}
		return hasFirst && hasLast
	}
	minimal := ddmin(writes, fails)
	if len(minimal) != 2 || minimal[0].String() != first || minimal[1].String() != last {
		t.Fatalf("ddmin kept %d ops (%s), want exactly the two triggering ops", len(minimal), renderWrites(minimal))
	}
}

// A planted engine-level divergence must come back shrunk: CheckIncremental
// on a case whose writes include a delta the engine rejects (an error is a
// divergence) reports a minimal counterexample.
func TestCheckIncrementalReportsAndShrinks(t *testing.T) {
	src := `
		e(a, b). e(b, c).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	goodCase := IncrementalCase{Seed: 1, Program: p, Writes: []WriteOp{
		{Adds: atomsOf(t, "e(c, d)")},
		{Dels: atomsOf(t, "e(a, b)")},
	}}
	if d := CheckIncremental(goodCase); d != nil {
		t.Fatalf("agreeing case reported a divergence:\n%s", d.Report())
	}
}

func atomsOf(t *testing.T, srcs ...string) []datalog.Atom {
	t.Helper()
	out := make([]datalog.Atom, 0, len(srcs))
	for _, s := range srcs {
		p, err := datalog.Parse(s + ".")
		if err != nil || len(p.Clauses) != 1 {
			t.Fatalf("bad atom source %q: %v", s, err)
		}
		out = append(out, p.Clauses[0].Head)
	}
	return out
}
