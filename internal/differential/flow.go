package differential

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lattice"
	"repro/internal/multilog"
	"repro/internal/workload"
)

// This file cross-validates the MLS information-flow analysis the same way
// deadrules_test.go validates DL007: an analysis claim is only as good as a
// differential harness that tries to falsify it on generated programs. The
// claim under test is the contract behind FlowInfo.ClearanceIndependent
// (internal/analysis/flow.go): if every flow source of a predicate is
// universally dominated, then a fixed-level probe at a universally dominated
// level returns byte-identical answers no matter which clearance runs the
// reduction. The falsifiable converse is checked for every predicate,
// claimed or not: if observed answers *vary* across clearances, the analysis
// must not have claimed independence.

// FlowViolation is one falsified independence claim: a predicate the
// analysis called clearance-independent whose probe answers differed
// between two users.
type FlowViolation struct {
	Seed    int64
	Source  string
	Pred    string
	Probe   string
	Results map[string]string // user level -> rendered result
}

// Report renders the violation for test failure output.
func (v *FlowViolation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow independence violated: pred %s, probe %s (seed %d)\n", v.Pred, v.Probe, v.Seed)
	users := make([]string, 0, len(v.Results))
	for u := range v.Results {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		fmt.Fprintf(&b, "  as %s: %s\n", u, v.Results[u])
	}
	b.WriteString("program:\n")
	for _, line := range strings.Split(strings.TrimSpace(v.Source), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}

// FlowCampaignResult summarizes a flow-validation campaign. Independent and
// Dependent count predicate claims; Varied counts predicates whose probe
// answers actually differed across clearances — it must be positive for the
// campaign to mean anything (otherwise equality holds vacuously).
type FlowCampaignResult struct {
	Programs    int
	Preds       int
	Independent int
	Dependent   int
	Varied      int
	Probes      int
	Violations  []*FlowViolation
}

// flowProbeAttr maps the generator's predicate families to the attribute
// their tuples carry: ProgramSource facts use attribute a, rule heads d.
func flowProbeAttr(pred string) string {
	if strings.HasPrefix(pred, "p") {
		return "a"
	}
	return "d"
}

// flowCase is one generated database plus its chain of user levels.
type flowCase struct {
	seed   int64
	src    string
	db     *multilog.Database
	levels int
}

// flowCases generates n seeded databases. Each program gets a guaranteed
// clearance-independent island (an l0 fact and an l0-headed rule over it)
// so the campaign always exercises the claimed-independent class, and every
// third program gets an injected downgrade rule — an l0 head fed from the
// chain's top level — so the dependent class demonstrably varies.
func flowCases(seed int64, n int) []flowCase {
	out := make([]flowCase, 0, n)
	for i := 0; i < n; i++ {
		cfg := workload.ProgramConfig{
			Levels: 2 + i%3,
			Facts:  3 + i%5,
			Rules:  1 + i%3,
			Preds:  2,
			Poly:   0.5,
			Seed:   seed + int64(i),
		}
		src := workload.ProgramSource(cfg)
		bottom, top := workload.Level(0), workload.Level(cfg.Levels-1)
		src += fmt.Sprintf("%s[p7(k0: a -%s-> base)].\n", bottom, bottom)
		src += fmt.Sprintf("%s[q7(K: d -%s-> echoed)] :- %s[p7(K: a -C-> V)] << fir.\n",
			bottom, bottom, bottom)
		if i%3 == 0 {
			src += fmt.Sprintf("%s[q8(K: d -%s-> leak)] :- %s[p0(K: a -C-> V)] << opt.\n",
				bottom, bottom, top)
		}
		db, err := multilog.Parse(src)
		if err != nil {
			//vet:allow nopanic -- a generator bug must abort the campaign loudly
			panic(fmt.Sprintf("differential: flow generator emitted unparsable program:\n%s\n%v", src, err))
		}
		out = append(out, flowCase{seed: cfg.Seed, src: src, db: db, levels: cfg.Levels})
	}
	return out
}

// RunFlowCampaign generates n seeded databases, runs the information-flow
// analysis on each, and probes every analyzed m-predicate at the chain's
// bottom level (the one level every user dominates) under all four belief
// readings, as every user, through the Figure 12 reduction. A predicate the
// analysis claims clearance-independent must answer byte-identically for
// every user; a predicate whose answers vary must not carry the claim.
func RunFlowCampaign(seed int64, n int) FlowCampaignResult {
	res := FlowCampaignResult{Programs: n}
	for _, c := range flowCases(seed, n) {
		flow, err := analysis.AnalyzeFlow(c.db)
		if err != nil {
			//vet:allow nopanic -- generated lattices are valid chains by construction
			panic(fmt.Sprintf("differential: flow analysis rejected generated program: %v", err))
		}
		users := make([]lattice.Label, c.levels)
		for l := 0; l < c.levels; l++ {
			users[l] = workload.Level(l)
		}
		bottom := workload.Level(0)
		for _, pred := range flow.PredNames() {
			info := flow.Preds[pred]
			res.Preds++
			if info.ClearanceIndependent {
				res.Independent++
			} else {
				res.Dependent++
			}
			varied := false
			for _, mode := range []string{"", " << fir", " << opt", " << cau"} {
				probe := fmt.Sprintf("%s[%s(K: %s -C-> V)]%s", bottom, pred, flowProbeAttr(pred), mode)
				q, err := multilog.ParseGoals(probe)
				if err != nil {
					//vet:allow nopanic -- a malformed probe is a harness bug, not a test failure
					panic(fmt.Sprintf("differential: bad flow probe %q: %v", probe, err))
				}
				res.Probes++
				results := make(map[string]string, len(users))
				first, same := "", true
				for ui, user := range users {
					r, err := (reduceOracle{}).Answer(c.db, user, q)
					rendered := "error: <nil>"
					if err != nil {
						rendered = "error: " + err.Error()
					} else {
						rendered = r.String()
					}
					results[string(user)] = rendered
					if ui == 0 {
						first = rendered
					} else if rendered != first {
						same = false
					}
				}
				if same {
					continue
				}
				varied = true
				if info.ClearanceIndependent {
					res.Violations = append(res.Violations, &FlowViolation{
						Seed: c.seed, Source: c.src, Pred: pred, Probe: probe, Results: results,
					})
				}
			}
			if varied {
				res.Varied++
			}
		}
	}
	return res
}
