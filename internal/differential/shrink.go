package differential

import (
	"repro/internal/datalog"
	"repro/internal/multilog"
)

// ddmin is Zeller's delta-debugging minimization over a list of items:
// given a failing input, it returns a (locally) minimal sublist on which
// fails still holds. fails must be true for the input list. The final
// one-at-a-time pass guarantees 1-minimality: removing any single remaining
// item makes the failure disappear.
func ddmin[T any](items []T, fails func([]T) bool) []T {
	n := 2
	for len(items) >= 2 {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for start := 0; start < len(items); start += chunk {
			end := start + chunk
			if end > len(items) {
				end = len(items)
			}
			complement := make([]T, 0, len(items)-(end-start))
			complement = append(complement, items[:start]...)
			complement = append(complement, items[end:]...)
			if len(complement) > 0 && fails(complement) {
				items = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break
			}
			n = min(2*n, len(items))
		}
	}
	// 1-minimality pass.
	for i := 0; i < len(items); {
		complement := make([]T, 0, len(items)-1)
		complement = append(complement, items[:i]...)
		complement = append(complement, items[i+1:]...)
		if len(complement) > 0 && fails(complement) {
			items = complement
		} else {
			i++
		}
	}
	return items
}

// ShrinkDatalog minimizes a failing program: first ddmin over the clause
// list, then ddmin over each surviving clause's body literals. fails is the
// failure predicate (e.g. "two oracles still disagree on the goal"); it
// must hold for p. Candidate programs that fails rejects (including ones
// made unsafe by literal removal) are simply not taken.
func ShrinkDatalog(p *datalog.Program, fails func(*datalog.Program) bool) *datalog.Program {
	rebuild := func(clauses []datalog.Clause) *datalog.Program {
		return &datalog.Program{Clauses: clauses, Queries: p.Queries}
	}
	size := func(clauses []datalog.Clause) int {
		n := 0
		for _, c := range clauses {
			n += 1 + len(c.Body)
		}
		return n
	}
	clauses := p.Clauses
	// Alternate clause-level and body-level minimization to a fixpoint:
	// dropping a body literal (e.g. turning a recursive rule into a base
	// one) can make whole clauses removable that were load-bearing before.
	for {
		before := size(clauses)
		clauses = ddmin(clauses, func(cs []datalog.Clause) bool {
			return fails(rebuild(cs))
		})
		for i := range clauses {
			if len(clauses[i].Body) < 2 {
				continue
			}
			body := ddmin(clauses[i].Body, func(ls []datalog.Literal) bool {
				cand := make([]datalog.Clause, len(clauses))
				copy(cand, clauses)
				cand[i] = datalog.Clause{Head: clauses[i].Head, Body: ls}
				return fails(rebuild(cand))
			})
			clauses[i] = datalog.Clause{Head: clauses[i].Head, Body: body}
		}
		if size(clauses) == before {
			break
		}
	}
	return rebuild(clauses)
}

// ShrinkMultiLog minimizes a failing MultiLog database over its combined
// clause list (Λ ∪ Σ ∪ Π). Removing Λ clauses that the user level or
// admissibility depends on makes construction fail identically for every
// oracle, so fails rejects those candidates and they are kept.
func ShrinkMultiLog(db *multilog.Database, fails func(*multilog.Database) bool) *multilog.Database {
	var all []multilog.Clause
	all = append(all, db.Lambda...)
	all = append(all, db.Sigma...)
	all = append(all, db.Pi...)
	rebuild := func(clauses []multilog.Clause) *multilog.Database {
		out := multilog.NewDatabase()
		for _, c := range clauses {
			if err := out.AddClause(c); err != nil {
				return nil
			}
		}
		out.Queries = db.Queries
		return out
	}
	kept := ddmin(all, func(cs []multilog.Clause) bool {
		cand := rebuild(cs)
		return cand != nil && fails(cand)
	})
	return rebuild(kept)
}

// ClauseCount returns the number of clauses in a MultiLog database.
func ClauseCount(db *multilog.Database) int {
	return len(db.Lambda) + len(db.Sigma) + len(db.Pi)
}
