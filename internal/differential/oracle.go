package differential

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
	"repro/internal/resource"
)

// ErrUnsupported marks a program/query combination an oracle legitimately
// cannot answer (e.g. plain SLD on a left-recursive or cyclic program hits
// its depth bound). Unsupported oracles are skipped, not counted as
// disagreements.
var ErrUnsupported = errors.New("differential: oracle does not support this case")

// unsupported wraps bound-exhaustion errors as ErrUnsupported; anything
// else is a real failure the harness must report. Resource-governance stops
// (cancellation, budget exhaustion) are bound exhaustion too: a truncated
// oracle has no complete answer to compare, which is not a disagreement.
func unsupported(err error) error {
	if err == nil {
		return nil
	}
	if resource.IsLimit(err) {
		return fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	msg := err.Error()
	if strings.Contains(msg, "depth bound") || strings.Contains(msg, "exceeded") {
		return fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	return err
}

// DatalogOracle answers a single goal against a Datalog program. Answers
// are canonicalized so any two oracles are directly comparable.
type DatalogOracle interface {
	Name() string
	Answer(p *datalog.Program, goal datalog.Atom) (Result, error)
}

// bottomUpOracle covers the four fixpoint strategies (naive, semi-naive,
// no-index, parallel) via the Evaluator toggles.
type bottomUpOracle struct {
	name     string
	naive    bool
	noIndex  bool
	parallel bool
}

func (o bottomUpOracle) Name() string { return o.name }

func (o bottomUpOracle) Answer(p *datalog.Program, goal datalog.Atom) (Result, error) {
	e := datalog.Evaluator{Naive: o.naive, NoIndex: o.noIndex, Parallel: o.parallel}
	model, err := e.Eval(p, nil)
	if err != nil {
		return Result{}, err
	}
	return substResult(datalog.QueryStore(model, goal)), nil
}

// magicOracle evaluates through the magic-sets rewriting (falling back to
// plain evaluation where the rewriting is inapplicable, as QueryMagic does).
type magicOracle struct{}

func (magicOracle) Name() string { return "magic" }

func (magicOracle) Answer(p *datalog.Program, goal datalog.Atom) (Result, error) {
	subs, err := datalog.QueryMagic(p, nil, goal)
	if err != nil {
		return Result{}, err
	}
	return substResult(subs), nil
}

// sldOracle is the top-down resolution prover. Bound exhaustion (left
// recursion, cyclic data) reports ErrUnsupported.
type sldOracle struct {
	maxDepth int
	maxSteps int
}

func (sldOracle) Name() string { return "sld" }

func (o sldOracle) Answer(p *datalog.Program, goal datalog.Atom) (Result, error) {
	s := datalog.NewSLD(p)
	s.MaxDepth = o.maxDepth
	s.MaxSteps = o.maxSteps
	answers, err := s.Prove(goal, 0)
	if err != nil {
		return Result{}, unsupported(err)
	}
	tuples := make([]string, len(answers))
	for i, a := range answers {
		tuples[i] = a.Bindings.String()
	}
	return NewResult(tuples), nil
}

// tabledOracle is the OLDT-style tabled evaluator.
type tabledOracle struct{ maxRounds int }

func (tabledOracle) Name() string { return "tabled" }

func (o tabledOracle) Answer(p *datalog.Program, goal datalog.Atom) (Result, error) {
	tb := datalog.NewTabled(p)
	tb.MaxRounds = o.maxRounds
	subs, err := tb.Prove(goal)
	if err != nil {
		return Result{}, unsupported(err)
	}
	return substResult(subs), nil
}

// compiledOracle is the compiled bottom-up engine (internal/compile):
// interned terms, columnar relations, plan-cache execution. Programs the
// compiler routes to the interpreter (*ErrFallback — e.g. DL010 nonlinear
// recursion, which FamSameGen never triggers but hand-shrunk cases can)
// are reported unsupported rather than silently answered by a different
// engine.
type compiledOracle struct{}

func (compiledOracle) Name() string { return "compiled" }

func (compiledOracle) Answer(p *datalog.Program, goal datalog.Atom) (Result, error) {
	model, _, err := compile.EvalContext(context.Background(), p, nil, compile.Options{})
	if err != nil {
		if compile.IsFallback(err) {
			return Result{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
		}
		return Result{}, unsupported(err)
	}
	return substResult(datalog.QueryStore(model, goal)), nil
}

// DatalogOracles returns the full oracle set, semi-naive first (it is the
// reference implementation the others are compared against).
func DatalogOracles() []DatalogOracle {
	return []DatalogOracle{
		bottomUpOracle{name: "semi-naive"},
		bottomUpOracle{name: "naive", naive: true},
		bottomUpOracle{name: "no-index", noIndex: true},
		bottomUpOracle{name: "parallel", parallel: true},
		magicOracle{},
		// The step budget is the real guard: on cyclic or left-recursive
		// programs SLD explores exponentially many bounded-depth paths, so
		// a depth bound alone never fires in reasonable time. Bounded
		// cases come back ErrUnsupported in milliseconds and are skipped.
		sldOracle{maxDepth: 64, maxSteps: 5_000},
		tabledOracle{},
		incrementalOracle{},
		compiledOracle{},
	}
}

// MultiLogOracle answers a conjunctive MultiLog query at a user level.
type MultiLogOracle interface {
	Name() string
	Answer(db *multilog.Database, user lattice.Label, q multilog.Query) (Result, error)
}

// proverOracle is the Figure 9 goal-directed operational semantics.
type proverOracle struct{ maxDepth int }

func (proverOracle) Name() string { return "prove" }

func (o proverOracle) Answer(db *multilog.Database, user lattice.Label, q multilog.Query) (Result, error) {
	pr, err := multilog.NewProver(db, user)
	if err != nil {
		return Result{}, err
	}
	if o.maxDepth > 0 {
		pr.MaxDepth = o.maxDepth
	}
	answers, err := pr.Prove(q, 0)
	if err != nil {
		return Result{}, unsupported(err)
	}
	tuples := make([]string, len(answers))
	for i, a := range answers {
		tuples[i] = a.Bindings.String()
	}
	return NewResult(tuples), nil
}

// reduceOracle is the Figure 12 reduction to the classical engine.
type reduceOracle struct{}

func (reduceOracle) Name() string { return "reduce" }

func (reduceOracle) Answer(db *multilog.Database, user lattice.Label, q multilog.Query) (Result, error) {
	red, err := multilog.Reduce(db, user)
	if err != nil {
		return Result{}, err
	}
	answers, err := red.Query(q)
	if err != nil {
		return Result{}, err
	}
	tuples := make([]string, len(answers))
	for i, a := range answers {
		tuples[i] = a.Bindings.String()
	}
	return NewResult(tuples), nil
}

// compiledReduceOracle runs the same Figure 12 reduction, but materializes
// the minimal model through the compiled engine (PrepareReduction) and
// answers via QueryPrepared. It must byte-agree with reduceOracle — and,
// through Theorem 6.1, with the prover — at every clearance and belief
// mode.
type compiledReduceOracle struct{}

func (compiledReduceOracle) Name() string { return "reduce-compiled" }

func (compiledReduceOracle) Answer(db *multilog.Database, user lattice.Label, q multilog.Query) (Result, error) {
	red, err := multilog.Reduce(db, user)
	if err != nil {
		return Result{}, err
	}
	if _, err := compile.PrepareReduction(context.Background(), red, compile.Options{}); err != nil {
		return Result{}, unsupported(err)
	}
	answers, _, err := red.QueryPrepared(context.Background(), q, resource.Limits{})
	if err != nil {
		return Result{}, unsupported(err)
	}
	tuples := make([]string, len(answers))
	for i, a := range answers {
		tuples[i] = a.Bindings.String()
	}
	return NewResult(tuples), nil
}

// MultiLogOracles returns the MultiLog semantics, reduction first (it is
// the reference: Theorem 6.1 equates the prover to it), plus the
// compiled-engine reduction.
func MultiLogOracles() []MultiLogOracle {
	return []MultiLogOracle{reduceOracle{}, proverOracle{maxDepth: 512}, compiledReduceOracle{}}
}
