package differential

import (
	"reflect"
	"testing"

	"repro/internal/datalog"
	"repro/internal/multilog"
	"repro/internal/workload"
)

// ddmin on a synthetic failure: the failure persists iff both 3 and 17
// survive, so the minimum is exactly {3, 17}.
func TestDDMin(t *testing.T) {
	var items []int
	for i := 0; i < 20; i++ {
		items = append(items, i)
	}
	calls := 0
	fails := func(xs []int) bool {
		calls++
		has3, has17 := false, false
		for _, x := range xs {
			has3 = has3 || x == 3
			has17 = has17 || x == 17
		}
		return has3 && has17
	}
	got := ddmin(items, fails)
	if !reflect.DeepEqual(got, []int{3, 17}) {
		t.Fatalf("ddmin = %v, want [3 17]", got)
	}
	if calls > 200 {
		t.Errorf("ddmin used %d probes on 20 items; expected well under 200", calls)
	}
}

// dropNegation is the injected fault: an "engine" that silently ignores
// negated body literals — the classic stratification bug.
func dropNegation(p *datalog.Program) *datalog.Program {
	out := &datalog.Program{Queries: p.Queries}
	for _, c := range p.Clauses {
		nc := datalog.Clause{Head: c.Head}
		for _, l := range c.Body {
			if !l.Negated {
				nc.Body = append(nc.Body, l)
			}
		}
		out.Add(nc)
	}
	return out
}

// TestShrinkInjectedFault demonstrates the shrinker end to end: a ~25
// clause generated program on which a deliberately broken engine (negation
// dropped) disagrees with the real one must minimize to a counterexample
// of at most 5 clauses — the smallest program that still exhibits the bug.
func TestShrinkInjectedFault(t *testing.T) {
	prog, goals := workload.DatalogProgram(workload.DatalogConfig{
		Family: workload.FamNegation, Size: 8, Seed: 42,
	})
	goal := goals[1] // unreached(X)
	answers := func(p *datalog.Program) (Result, bool) {
		subs, err := datalog.Query(p, nil, goal)
		if err != nil {
			return Result{}, false
		}
		return substResult(subs), true
	}
	fails := func(p *datalog.Program) bool {
		good, ok1 := answers(p)
		bad, ok2 := answers(dropNegation(p))
		return ok1 && ok2 && !good.Equal(bad)
	}
	if !fails(prog) {
		t.Fatalf("injected fault not observable on the original %d-clause program", len(prog.Clauses))
	}
	minimal := ShrinkDatalog(prog, fails)
	t.Logf("shrunk %d clauses -> %d:\n%s", len(prog.Clauses), len(minimal.Clauses), minimal)
	if !fails(minimal) {
		t.Fatal("shrunk program no longer exhibits the fault")
	}
	if len(minimal.Clauses) > 5 {
		t.Errorf("shrinker left %d clauses, want ≤ 5:\n%s", len(minimal.Clauses), minimal)
	}
	// 1-minimality: removing any single clause must erase the fault.
	for i := range minimal.Clauses {
		sub := &datalog.Program{}
		for j, c := range minimal.Clauses {
			if j != i {
				sub.Add(c)
			}
		}
		if fails(sub) {
			t.Errorf("clause %d is removable; shrink result not 1-minimal", i)
		}
	}
}

// The MultiLog shrinker minimizes over Λ ∪ Σ ∪ Π while the failure
// predicate rejects databases whose construction breaks; here the "fault"
// is simply the presence of a derivable q0 answer, so the minimum is the
// supporting clause set.
func TestShrinkMultiLog(t *testing.T) {
	cases := MultiLogPrograms(3, 4)
	for _, c := range cases {
		if c.QuerySrc != "l1[q0(K: d -C-> V)]" || c.User != "l1" {
			continue
		}
		oracle := reduceOracle{}
		r, err := oracle.Answer(c.DB, c.User, c.Query)
		if err != nil || r.Len() == 0 {
			continue
		}
		minimal := ShrinkMultiLog(c.DB, func(db *multilog.Database) bool {
			rr, err := oracle.Answer(db, c.User, c.Query)
			return err == nil && rr.Equal(r)
		})
		before, after := ClauseCount(c.DB), ClauseCount(minimal)
		if after > before {
			t.Fatalf("shrinker grew the database: %d -> %d", before, after)
		}
		rr, err := oracle.Answer(minimal, c.User, c.Query)
		if err != nil || !rr.Equal(r) {
			t.Fatalf("shrunk database changed the answer: %v %v", rr, err)
		}
		t.Logf("multilog shrink: %d clauses -> %d", before, after)
		return
	}
	t.Skip("no seeded case with derivable q0 answers at l1; generator drift")
}
