package mls

import (
	"fmt"

	"repro/internal/lattice"
)

// InsertAt inserts a tuple written entirely at the subject's level — the
// ★-property allows a subject to write only at its own level, so ordinary
// INSERTs classify every cell at the subject's clearance.
func (r *Relation) InsertAt(user lattice.Label, data ...string) error {
	if len(data) != len(r.Scheme.Attrs) {
		return fmt.Errorf("mls: %s: InsertAt needs %d values", r.Scheme.Name, len(r.Scheme.Attrs))
	}
	vals := make([]Value, len(data))
	for i, d := range data {
		vals[i] = V(d, user)
	}
	return r.Insert(Tuple{Values: vals})
}

// Update performs a multilevel update of one attribute by a subject cleared
// at user, across every polyinstantiation chain (key data + key class)
// whose key is visible to the subject. It reports the number of tuples
// written. See UpdateWhere for the per-chain semantics.
func (r *Relation) Update(user lattice.Label, key, attr, newValue string) (int, error) {
	p := r.Scheme.Poset
	seen := map[lattice.Label]bool{}
	var chains []lattice.Label
	for _, t := range r.Tuples {
		k := t.Values[r.Scheme.KeyIdx]
		if k.Data != key || !p.Dominates(user, k.Class) {
			continue
		}
		if !seen[k.Class] {
			seen[k.Class] = true
			chains = append(chains, k.Class)
		}
	}
	if len(chains) == 0 {
		return 0, fmt.Errorf("mls: %s: no tuple with key %s visible at %s", r.Scheme.Name, key, user)
	}
	written := 0
	for _, kc := range chains {
		n, err := r.UpdateWhere(user, key, kc, attr, newValue)
		if err != nil {
			return written, err
		}
		written += n
	}
	return written, nil
}

// UpdateWhere updates one attribute within a single polyinstantiation chain
// (the tuples sharing key data and key classification keyClass), enforcing
// required polyinstantiation [12]:
//
//   - a subject owns the cells classified at its level. If any tuple in
//     the chain holds the attribute at exactly the subject's level, the
//     write happens in place — and propagates to *every* such cell in the
//     chain, because polyinstantiated higher versions borrow the lower
//     cells rather than owning them (otherwise the functional dependency
//     AK, C_AK, C_i → A_i would break the moment the owner updates);
//   - otherwise a polyinstantiated copy of the most informative visible
//     version is created with the cell reclassified at the subject's level.
//     The lower tuple survives — this is precisely how the paper's tuples
//     t4 and t5 come into existence (§3, "possible through a series of
//     updates if required polyinstantiation is enforced").
func (r *Relation) UpdateWhere(user lattice.Label, key string, keyClass lattice.Label, attr, newValue string) (int, error) {
	ai := r.Scheme.AttrIndex(attr)
	if ai < 0 {
		return 0, fmt.Errorf("mls: %s: no attribute %s", r.Scheme.Name, attr)
	}
	if ai == r.Scheme.KeyIdx {
		return 0, fmt.Errorf("mls: %s: updating the apparent key is not supported; delete and re-insert", r.Scheme.Name)
	}
	p := r.Scheme.Poset
	if !p.Dominates(user, keyClass) {
		return 0, fmt.Errorf("mls: %s: subject at %s cannot see keys classified %s", r.Scheme.Name, user, keyClass)
	}
	inChain := func(t Tuple) bool {
		k := t.Values[r.Scheme.KeyIdx]
		return k.Data == key && k.Class == keyClass
	}
	// In-place overwrite: the subject's own version (TC == user) takes the
	// write and reclassifies the cell at the subject's level; borrowed
	// copies of the subject's cell (same attribute classified at the
	// subject's level inside polyinstantiated higher versions) get the
	// propagation, keeping the FD AK, C_AK, C_i → A_i intact.
	wrote := 0
	ownerIdx := -1
	for i := range r.Tuples {
		if inChain(r.Tuples[i]) && r.Tuples[i].TC == user {
			ownerIdx = i
			break
		}
	}
	if ownerIdx >= 0 {
		t := &r.Tuples[ownerIdx]
		t.Values[ai] = V(newValue, user)
		t.TC = r.recomputeTC(*t, user)
		wrote++
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		if i == ownerIdx || !inChain(*t) || t.Values[ai].Class != user {
			continue
		}
		t.Values[ai] = V(newValue, user)
		wrote++
	}
	if wrote > 0 {
		return wrote, nil
	}
	// Required polyinstantiation: synthesize the subject's version from the
	// chain's *visible cells* — any cell classified ⪯ user, wherever its
	// host tuple's TC sits. (Pulling only from fully-visible tuples would
	// let a synthesized null contradict a borrowed cell living in a higher
	// tuple, breaking the FD.) Per attribute the maximal-class visible
	// cell wins; attributes with no visible cell become nulls at the key
	// class.
	exists := false
	for _, t := range r.Tuples {
		if inChain(t) {
			exists = true
			break
		}
	}
	if !exists {
		return 0, fmt.Errorf("mls: %s: no tuple with key (%s, %s)", r.Scheme.Name, key, keyClass)
	}
	vals := make([]Value, len(r.Scheme.Attrs))
	for i := range vals {
		if i == r.Scheme.KeyIdx {
			vals[i] = V(key, keyClass)
			continue
		}
		found := false
		var best Value
		for _, t := range r.Tuples {
			if !inChain(t) {
				continue
			}
			cell := t.Values[i]
			if cell.Null || !p.Dominates(user, cell.Class) {
				continue
			}
			if !found || p.StrictlyDominates(cell.Class, best.Class) {
				best, found = cell, true
			}
		}
		if found {
			vals[i] = best
		} else {
			vals[i] = NullV(keyClass)
		}
	}
	vals[ai] = V(newValue, user)
	if err := r.Insert(Tuple{Values: vals, TC: r.recomputeTC(Tuple{Values: vals}, user)}); err != nil {
		return 0, err
	}
	return 1, nil
}

// Delete removes the subject's own versions of the keyed tuple: those whose
// apparent key is classified at the subject's level and whose TC equals it.
// The ★-property forbids deleting data owned by other levels, so
// polyinstantiated higher-level copies keyed at the subject's level survive
// and, lacking their lower-level companion, surface as the paper's surprise
// stories.
func (r *Relation) Delete(user lattice.Label, key string) (int, error) {
	removed := 0
	var kept []Tuple
	for _, t := range r.Tuples {
		k := t.Values[r.Scheme.KeyIdx]
		if k.Data == key && k.Class == user && t.TC == user {
			removed++
			continue
		}
		kept = append(kept, t)
	}
	if removed == 0 {
		return 0, fmt.Errorf("mls: %s: no tuple with key %s owned at %s", r.Scheme.Name, key, user)
	}
	r.Tuples = kept
	return removed, nil
}

// recomputeTC returns the tuple class after a write at level user: the lub
// of the cell classes joined with the writing subject's level, since TC
// records where the tuple was last written.
func (r *Relation) recomputeTC(t Tuple, user lattice.Label) lattice.Label {
	classes := make([]lattice.Label, 0, len(t.Values)+1)
	for _, v := range t.Values {
		classes = append(classes, v.Class)
	}
	classes = append(classes, user)
	tc, _ := r.Scheme.Poset.LubAll(classes)
	return tc
}
