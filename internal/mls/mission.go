package mls

import (
	"repro/internal/lattice"
)

// Mission attribute names (Figure 1).
const (
	AttrStarship    = "starship"
	AttrObjective   = "objective"
	AttrDestination = "destination"
)

// MissionScheme returns the scheme of the paper's Mission relation:
// Mission(Starship, C1, Objective, C2, Destination, C3, TC) over the
// three-level chain U < C < S, with Starship as the apparent key.
func MissionScheme() *Scheme {
	s, err := NewScheme("mission", lattice.UCS(), AttrStarship, AttrObjective, AttrDestination)
	if err != nil {
		panic(err) //vet:allow nopanic -- static input; cannot fail
	}
	return s
}

// Mission returns the Figure 1 instance of the Mission relation, tuples
// t1..t10 in order.
func Mission() *Relation {
	const (
		u = lattice.Unclassified
		c = lattice.Classified
		s = lattice.Secret
	)
	r := NewRelation(MissionScheme())
	rows := []Tuple{
		{Values: []Value{V("avenger", s), V("shipping", s), V("pluto", s)}, TC: s},    // t1
		{Values: []Value{V("atlantis", u), V("diplomacy", u), V("vulcan", u)}, TC: s}, // t2
		{Values: []Value{V("voyager", u), V("spying", s), V("mars", u)}, TC: s},       // t3
		{Values: []Value{V("phantom", u), V("spying", s), V("omega", u)}, TC: s},      // t4
		{Values: []Value{V("phantom", c), V("supply", s), V("venus", s)}, TC: s},      // t5
		{Values: []Value{V("atlantis", u), V("diplomacy", u), V("vulcan", u)}, TC: c}, // t6
		{Values: []Value{V("atlantis", u), V("diplomacy", u), V("vulcan", u)}, TC: u}, // t7
		{Values: []Value{V("voyager", u), V("training", u), V("mars", u)}, TC: u},     // t8
		{Values: []Value{V("falcon", u), V("piracy", u), V("venus", u)}, TC: u},       // t9
		{Values: []Value{V("eagle", u), V("patrolling", u), V("degoba", u)}, TC: u},   // t10
	}
	for _, t := range rows {
		r.MustInsert(t)
	}
	return r
}

// MissionByUpdates replays the update history that produces the Phantom
// rows of Figure 1 (§3: "tuples t4 and t5 are possible through a series of
// updates if required polyinstantiation is enforced"):
//
//  1. a U subject inserts (phantom, smuggling, omega);
//  2. an S subject updates the objective to spying — required
//     polyinstantiation creates (phantom U, spying S, omega U, TC S);
//  3. the U subject deletes its tuple, leaving the surprise story t4;
//  4. symmetrically at C/S for t5 (supply, venus).
//
// The function returns the resulting relation, whose Phantom tuples equal
// Figure 1's t4 and t5.
func MissionByUpdates() (*Relation, error) {
	const (
		u = lattice.Unclassified
		c = lattice.Classified
		s = lattice.Secret
	)
	r := NewRelation(MissionScheme())
	if err := r.InsertAt(u, "phantom", "smuggling", "omega"); err != nil {
		return nil, err
	}
	if _, err := r.UpdateWhere(s, "phantom", u, AttrObjective, "spying"); err != nil {
		return nil, err
	}
	if _, err := r.Delete(u, "phantom"); err != nil {
		return nil, err
	}
	// The C chain: C inserts its own phantom, S rewrites objective and
	// destination, C deletes.
	if err := r.Insert(Tuple{Values: []Value{V("phantom", c), V("escort", c), V("rigel", c)}}); err != nil {
		return nil, err
	}
	if _, err := r.UpdateWhere(s, "phantom", c, AttrObjective, "supply"); err != nil {
		return nil, err
	}
	if _, err := r.UpdateWhere(s, "phantom", c, AttrDestination, "venus"); err != nil {
		return nil, err
	}
	if _, err := r.Delete(c, "phantom"); err != nil {
		return nil, err
	}
	return r, nil
}
