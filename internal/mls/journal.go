package mls

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// OpKind discriminates journal operations.
type OpKind int

const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
)

// Op is one journaled multilevel operation, always attributed to a subject
// clearance — the raw material of the §3 narratives, where knowing *who*
// wrote *what at which level* is what separates a cover story from a
// surprise story.
type Op struct {
	Kind    OpKind
	Subject lattice.Label
	// Insert
	Data []string
	// Update
	Key      string
	KeyClass lattice.Label // NoLabel means every visible chain
	Attr     string
	NewValue string
}

// String renders the operation as an audit line.
func (o Op) String() string {
	switch o.Kind {
	case OpInsert:
		return fmt.Sprintf("%s: insert (%s)", o.Subject, strings.Join(o.Data, ", "))
	case OpUpdate:
		chain := ""
		if o.KeyClass != lattice.NoLabel {
			chain = fmt.Sprintf(" [chain %s]", o.KeyClass)
		}
		return fmt.Sprintf("%s: update %s%s set %s = %s", o.Subject, o.Key, chain, o.Attr, o.NewValue)
	case OpDelete:
		return fmt.Sprintf("%s: delete %s", o.Subject, o.Key)
	}
	return "?"
}

// Journal wraps a relation with an append-only audit trail: every mutation
// goes through the journal, is applied to the live relation, and can be
// replayed from scratch onto a fresh instance. Replay determinism is the
// invariant the tests check: audit(replay(J)) ≡ audit(J).
type Journal struct {
	rel *Relation
	ops []Op
}

// NewJournal starts a journal over an empty instance of the scheme.
func NewJournal(scheme *Scheme) *Journal {
	return &Journal{rel: NewRelation(scheme)}
}

// Relation returns the live relation. Callers must not mutate it directly;
// use the journal's operations.
func (j *Journal) Relation() *Relation { return j.rel }

// Ops returns the audit trail. The slice must not be modified.
func (j *Journal) Ops() []Op { return j.ops }

// Insert journals and applies an InsertAt.
func (j *Journal) Insert(subject lattice.Label, data ...string) error {
	op := Op{Kind: OpInsert, Subject: subject, Data: append([]string(nil), data...)}
	if err := j.apply(op); err != nil {
		return err
	}
	j.ops = append(j.ops, op)
	return nil
}

// Update journals and applies an update; keyClass NoLabel updates every
// visible chain (Update), a concrete label one chain (UpdateWhere).
func (j *Journal) Update(subject lattice.Label, key string, keyClass lattice.Label, attr, newValue string) error {
	op := Op{Kind: OpUpdate, Subject: subject, Key: key, KeyClass: keyClass, Attr: attr, NewValue: newValue}
	if err := j.apply(op); err != nil {
		return err
	}
	j.ops = append(j.ops, op)
	return nil
}

// Delete journals and applies a delete.
func (j *Journal) Delete(subject lattice.Label, key string) error {
	op := Op{Kind: OpDelete, Subject: subject, Key: key}
	if err := j.apply(op); err != nil {
		return err
	}
	j.ops = append(j.ops, op)
	return nil
}

func (j *Journal) apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		return j.rel.InsertAt(op.Subject, op.Data...)
	case OpUpdate:
		if op.KeyClass == lattice.NoLabel {
			_, err := j.rel.Update(op.Subject, op.Key, op.Attr, op.NewValue)
			return err
		}
		_, err := j.rel.UpdateWhere(op.Subject, op.Key, op.KeyClass, op.Attr, op.NewValue)
		return err
	case OpDelete:
		_, err := j.rel.Delete(op.Subject, op.Key)
		return err
	}
	return fmt.Errorf("mls: unknown journal op %d", op.Kind)
}

// Replay applies the journal to a fresh relation and returns it; the result
// equals the live relation.
func (j *Journal) Replay() (*Relation, error) {
	fresh := &Journal{rel: NewRelation(j.rel.Scheme)}
	for _, op := range j.ops {
		if err := fresh.apply(op); err != nil {
			return nil, fmt.Errorf("mls: replay: %v: %w", op, err)
		}
	}
	return fresh.rel, nil
}

// Audit renders the trail, one line per operation.
func (j *Journal) Audit() string {
	var b strings.Builder
	for i, op := range j.ops {
		fmt.Fprintf(&b, "%3d  %s\n", i+1, op)
	}
	return b.String()
}

// Blame returns the audit lines whose subject strictly dominates the given
// level and whose operation touched the given key — the question a subject
// confronted with a surprise story wants answered ("who above me wrote
// this?"), answerable only by a trusted auditor, since the journal itself
// is not subject to the visibility rules.
func (j *Journal) Blame(key string, below lattice.Label, p *lattice.Poset) []Op {
	var out []Op
	for _, op := range j.ops {
		if !p.StrictlyDominates(op.Subject, below) {
			continue
		}
		switch op.Kind {
		case OpUpdate, OpDelete:
			if op.Key == key {
				out = append(out, op)
			}
		case OpInsert:
			if len(op.Data) > 0 && op.Data[0] == key {
				out = append(out, op)
			}
		}
	}
	return out
}
