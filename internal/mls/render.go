package mls

import (
	"fmt"
	"strings"
)

// Render prints the relation as a fixed-width text table in the layout of
// the paper's figures: one "value CLASS" column per attribute plus TC.
// It is used by the figure-regeneration harness (cmd/benchfig) and by the
// golden tests that compare views against Figures 1-3 and 6-8.
func (r *Relation) Render() string {
	headers := make([]string, 0, len(r.Scheme.Attrs)+1)
	headers = append(headers, r.Scheme.Attrs...)
	headers = append(headers, "TC")
	rows := make([][]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		row := make([]string, 0, len(headers))
		for _, v := range t.Values {
			row = append(row, v.String())
		}
		row = append(row, strings.ToUpper(string(t.TC)))
		rows = append(rows, row)
	}
	return renderTable(headers, rows)
}

// Rows returns the relation in the compact row notation used throughout the
// tests: each tuple as "v1 C1 | v2 C2 | ... | TC".
func (r *Relation) Rows() []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		parts := make([]string, 0, len(t.Values)+1)
		for _, v := range t.Values {
			parts = append(parts, v.String())
		}
		parts = append(parts, strings.ToUpper(string(t.TC)))
		out[i] = strings.Join(parts, " | ")
	}
	return out
}

func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
