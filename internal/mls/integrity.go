package mls

import (
	"fmt"
)

// CheckIntegrity verifies the instance-wide integrity properties of
// Definition 5.4 (carried over from [12]):
//
//   - entity integrity and null integrity per tuple (also enforced at
//     Insert time; re-checked here for relations built directly);
//   - no two distinct tuples subsume each other;
//   - polyinstantiation integrity: the functional dependency
//     AK, C_AK, C_i → A_i holds for every data attribute A_i.
func (r *Relation) CheckIntegrity() error {
	for _, t := range r.Tuples {
		if err := r.checkTuple(t); err != nil {
			return err
		}
	}
	// Mutual subsumption means identical cells; that is legal when the TCs
	// differ (Figure 1 stores the Atlantis tuple at U, C and S — one belief
	// per level), so only exact duplicates are violations.
	for i, u := range r.Tuples {
		for j, v := range r.Tuples {
			if i < j && u.Equal(v) {
				return fmt.Errorf("mls: %s: tuples %d and %d are duplicates and subsume each other", r.Scheme.Name, i+1, j+1)
			}
		}
	}
	return r.checkPolyinstantiation()
}

// checkPolyinstantiation verifies AK, C_AK, C_i → A_i.
func (r *Relation) checkPolyinstantiation() error {
	keyIdx := r.Scheme.KeyIdx
	type fdKey struct {
		key, keyClass string
		attr          int
		class         string
	}
	seen := map[fdKey]Value{}
	for _, t := range r.Tuples {
		k := t.Values[keyIdx]
		for i, v := range t.Values {
			fk := fdKey{k.Data, string(k.Class), i, string(v.Class)}
			if prev, ok := seen[fk]; ok {
				if prev.Null != v.Null || (!v.Null && prev.Data != v.Data) {
					return fmt.Errorf("mls: %s: polyinstantiation integrity violated for key (%s,%s), attribute %s at class %s: %s vs %s",
						r.Scheme.Name, k.Data, k.Class, r.Scheme.Attrs[i], v.Class, prev, v)
				}
				continue
			}
			seen[fk] = v
		}
	}
	return nil
}
