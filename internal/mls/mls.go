// Package mls implements the Jajodia-Sandhu multilevel secure relational
// model (§2 of the paper, after [12]): multilevel schemes and instances with
// per-attribute classification and a tuple class TC, views at an access
// class (Definition 2.3) with subsumption, the core integrity properties,
// the filter function σ, and polyinstantiating updates — enough to
// reconstruct the paper's Mission relation (Figure 1) and its level views
// (Figures 2 and 3), including the *surprise stories* the paper identifies.
package mls

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// Value is one attribute cell: a data value (or null) and its
// classification. Per null integrity, nulls are classified at the key level.
type Value struct {
	Data  string
	Null  bool
	Class lattice.Label
}

// V builds a non-null value.
func V(data string, class lattice.Label) Value { return Value{Data: data, Class: class} }

// NullV builds a null value classified at class.
func NullV(class lattice.Label) Value { return Value{Null: true, Class: class} }

// Equal reports whether two cells agree in value and classification.
func (v Value) Equal(u Value) bool {
	return v.Null == u.Null && v.Class == u.Class && (v.Null || v.Data == u.Data)
}

// String renders "value class"; nulls render as ⊥.
func (v Value) String() string {
	if v.Null {
		return fmt.Sprintf("⊥ %s", strings.ToUpper(string(v.Class)))
	}
	return fmt.Sprintf("%s %s", v.Data, strings.ToUpper(string(v.Class)))
}

// Tuple is a multilevel tuple: one Value per scheme attribute plus the tuple
// class TC.
type Tuple struct {
	Values []Value
	TC     lattice.Label
}

// Equal reports cell-wise equality including TC.
func (t Tuple) Equal(u Tuple) bool {
	if t.TC != u.TC || len(t.Values) != len(u.Values) {
		return false
	}
	for i := range t.Values {
		if !t.Values[i].Equal(u.Values[i]) {
			return false
		}
	}
	return true
}

// Scheme is a multilevel relation scheme R(A1,C1,...,An,Cn,TC)
// (Definition 2.1). KeyIdx selects the apparent-key attribute AK; the paper
// assumes single-attribute keys (§5, fn 12) and so does this type — see
// MultiKeyScheme in the multilog package for the §7 extension.
type Scheme struct {
	Name   string
	Attrs  []string
	KeyIdx int
	Poset  *lattice.Poset
}

// NewScheme builds a scheme; the first attribute is the apparent key.
func NewScheme(name string, poset *lattice.Poset, attrs ...string) (*Scheme, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("mls: scheme %s needs at least one attribute", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return nil, fmt.Errorf("mls: scheme %s repeats attribute %s", name, a)
		}
		seen[a] = true
	}
	if err := poset.Validate(); err != nil {
		return nil, err
	}
	return &Scheme{Name: name, Attrs: attrs, KeyIdx: 0, Poset: poset}, nil
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Scheme) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Relation is a multilevel relation instance (Definition 2.2).
type Relation struct {
	Scheme *Scheme
	Tuples []Tuple
}

// NewRelation returns an empty instance of the scheme.
func NewRelation(s *Scheme) *Relation { return &Relation{Scheme: s} }

// Key returns the apparent-key cell of a tuple.
func (r *Relation) Key(t Tuple) Value { return t.Values[r.Scheme.KeyIdx] }

// Insert validates the tuple against the instance-level integrity
// properties and appends it. TC records the access class at which the tuple
// was inserted or last updated (§2); it defaults to lub{c_i} when left
// empty and must dominate lub{c_i} otherwise. (Definition 2.2 prints
// tc = lub{c_i}, but Figure 1's t2 carries TC=S over all-U attributes —
// the prose above the definition, "TC registers the access class c where
// the tuple was inserted/updated", is what the figures follow.)
func (r *Relation) Insert(t Tuple) error {
	if len(t.Values) != len(r.Scheme.Attrs) {
		return fmt.Errorf("mls: %s: tuple has %d values, scheme has %d attributes",
			r.Scheme.Name, len(t.Values), len(r.Scheme.Attrs))
	}
	classes := make([]lattice.Label, len(t.Values))
	for i, v := range t.Values {
		if !r.Scheme.Poset.Has(v.Class) {
			return fmt.Errorf("mls: %s: attribute %s classified at undeclared level %q",
				r.Scheme.Name, r.Scheme.Attrs[i], v.Class)
		}
		classes[i] = v.Class
	}
	wantTC, ok := r.Scheme.Poset.LubAll(classes)
	if !ok {
		return fmt.Errorf("mls: %s: attribute classes %v have no least upper bound", r.Scheme.Name, classes)
	}
	if t.TC == lattice.NoLabel {
		t.TC = wantTC
	} else if !r.Scheme.Poset.Dominates(t.TC, wantTC) {
		return fmt.Errorf("mls: %s: TC %s does not dominate lub of attribute classes %s",
			r.Scheme.Name, t.TC, wantTC)
	}
	if err := r.checkTuple(t); err != nil {
		return err
	}
	// A relation instance is a set of tuples (Definition 2.2): re-inserting
	// an identical tuple is a no-op.
	for _, u := range r.Tuples {
		if u.Equal(t) {
			return nil
		}
	}
	// Incremental polyinstantiation integrity: the new tuple's cells must
	// agree with every stored cell at the same (key, key class, attribute,
	// class) — in particular, INSERTing an existing key at its own level
	// with different values is a key violation, not polyinstantiation.
	newKey := t.Values[r.Scheme.KeyIdx]
	for _, u := range r.Tuples {
		k := u.Values[r.Scheme.KeyIdx]
		if k.Data != newKey.Data || k.Class != newKey.Class {
			continue
		}
		for i, v := range t.Values {
			uv := u.Values[i]
			if uv.Class != v.Class {
				continue
			}
			if uv.Null != v.Null || (!v.Null && uv.Data != v.Data) {
				return fmt.Errorf("mls: %s: polyinstantiation integrity: key (%s, %s) already holds %s = %s at class %s",
					r.Scheme.Name, newKey.Data, newKey.Class, r.Scheme.Attrs[i], uv, v.Class)
			}
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustInsert is Insert panicking on error, for static datasets in tests and
// examples.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// checkTuple enforces the per-tuple half of entity and null integrity
// (Definition 5.4; from [12]).
func (r *Relation) checkTuple(t Tuple) error {
	key := t.Values[r.Scheme.KeyIdx]
	if key.Null {
		return fmt.Errorf("mls: %s: entity integrity: apparent key is null", r.Scheme.Name)
	}
	for i, v := range t.Values {
		if i == r.Scheme.KeyIdx {
			continue
		}
		if !v.Null && !r.Scheme.Poset.Dominates(v.Class, key.Class) {
			return fmt.Errorf("mls: %s: entity integrity: %s classified %s below key class %s",
				r.Scheme.Name, r.Scheme.Attrs[i], v.Class, key.Class)
		}
		if v.Null && v.Class != key.Class {
			return fmt.Errorf("mls: %s: null integrity: null %s classified %s, key class is %s",
				r.Scheme.Name, r.Scheme.Attrs[i], v.Class, key.Class)
		}
	}
	return nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Scheme)
	for _, t := range r.Tuples {
		vals := append([]Value(nil), t.Values...)
		c.Tuples = append(c.Tuples, Tuple{Values: vals, TC: t.TC})
	}
	return c
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }
