package mls

import (
	"strings"
	"testing"

	"repro/internal/lattice"
)

const sampleRelation = `
# the phantom fragment of Figure 1
relation mission(starship, objective, destination)
levels u < c < s
tuple avenger:s shipping:s pluto:s @ s
tuple phantom:u null:u omega:u @ s
tuple eagle:u patrolling:u degoba:u
`

func TestParseRelation(t *testing.T) {
	r, err := ParseRelation(sampleRelation)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme.Name != "mission" || len(r.Scheme.Attrs) != 3 {
		t.Fatalf("scheme = %+v", r.Scheme)
	}
	if r.Len() != 3 {
		t.Fatalf("tuples = %d", r.Len())
	}
	if !r.Tuples[1].Values[1].Null {
		t.Error("null cell lost")
	}
	if r.Tuples[1].TC != s {
		t.Errorf("explicit TC lost: %s", r.Tuples[1].TC)
	}
	if r.Tuples[2].TC != u {
		t.Errorf("defaulted TC should be lub = u, got %s", r.Tuples[2].TC)
	}
	if !r.Scheme.Poset.Dominates(s, u) {
		t.Error("levels chain lost")
	}
}

func TestParseRelationRoundTrip(t *testing.T) {
	r, err := ParseRelation(sampleRelation)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseRelation(FormatRelation(r))
	if err != nil {
		t.Fatalf("FormatRelation output does not reparse: %v\n%s", err, FormatRelation(r))
	}
	if r.Render() != again.Render() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", r.Render(), again.Render())
	}
}

func TestParseRelationMissionMatchesBuiltin(t *testing.T) {
	r, err := ParseRelation(FormatRelation(Mission()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() != Mission().Render() {
		t.Error("formatted Mission does not reparse to itself")
	}
}

func TestParseRelationErrors(t *testing.T) {
	for _, src := range []string{
		"tuple a:u",                             // no relation line
		"relation r(a)\nbogus x",                // unknown directive
		"relation r\nlevels u",                  // malformed relation
		"relation r(a)\nlevels u\ntuple a",      // cell without class
		"relation r(a)\nlevels u\ntuple a:zz",   // undeclared level
		"relation r(a)\norder u",                // malformed order
		"relation r(a)\nlevels u < u",           // self-cover
		"relation r(a, a)\nlevels u",            // duplicate attribute
		"relation r(a)\nlevels u\ntuple null:u", // null key
	} {
		if _, err := ParseRelation(src); err == nil {
			t.Errorf("ParseRelation(%q) should fail", src)
		}
	}
}

func TestParseRelationDiamondOrder(t *testing.T) {
	src := `
relation r(k, a)
order lo left
order lo right
order left top
order right top
tuple k1:lo x:left
`
	r, err := ParseRelation(src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme.Poset.Comparable("left", "right") {
		t.Error("diamond arms must be incomparable")
	}
	if !strings.Contains(FormatRelation(r), "order lo left") {
		t.Error("FormatRelation lost order edges")
	}
}

func TestFormatRelationIsolatedLevel(t *testing.T) {
	p := lattice.New()
	p.Add("solo")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	scheme, err := NewScheme("r", p, "k", "a")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation(scheme)
	r.MustInsert(Tuple{Values: []Value{V("k1", "solo"), V("x", "solo")}})
	out := FormatRelation(r)
	if !strings.Contains(out, "levels solo") {
		t.Errorf("isolated level lost:\n%s", out)
	}
	again, err := ParseRelation(out)
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != r.Render() {
		t.Error("round trip with isolated level failed")
	}
}
