package mls

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
)

// randomRelation builds a seeded relation over a chain lattice with random
// polyinstantiation, always integrity-clean by construction.
func randomRelation(r *rand.Rand) *Relation {
	levels := []lattice.Label{"l0", "l1", "l2", "l3"}
	p, err := lattice.Chain(levels...)
	if err != nil {
		panic(err)
	}
	scheme, err := NewScheme("r", p, "id", "a", "b")
	if err != nil {
		panic(err)
	}
	rel := NewRelation(scheme)
	nKeys := 1 + r.Intn(8)
	for k := 0; k < nKeys; k++ {
		base := levels[r.Intn(len(levels))]
		key := fmt.Sprintf("k%d", k)
		vals := []Value{V(key, base), V(fmt.Sprintf("a%d", r.Intn(4)), base), V(fmt.Sprintf("b%d", r.Intn(4)), base)}
		rel.MustInsert(Tuple{Values: vals})
		// Possibly polyinstantiate one attribute at a higher level.
		if r.Intn(2) == 0 {
			ups := p.UpSet(base)
			if len(ups) > 1 {
				hi := ups[1+r.Intn(len(ups)-1)]
				pv := append([]Value(nil), vals...)
				ai := 1 + r.Intn(2)
				pv[ai] = V(fmt.Sprintf("cover%d", r.Intn(4)), hi)
				rel.MustInsert(Tuple{Values: pv, TC: hi})
			}
		}
	}
	return rel
}

// Simple security, as a property: the keys visible at a level are a subset
// of those visible at any dominating level.
func TestQuickViewMonotoneInLevel(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r)
		p := rel.Scheme.Poset
		for _, lo := range p.Labels() {
			for _, hi := range p.Labels() {
				if !p.Dominates(hi, lo) {
					continue
				}
				loKeys := map[string]bool{}
				for _, t := range rel.ViewAt(lo, ViewOptions{}).Tuples {
					loKeys[t.Values[0].Data] = true
				}
				hiKeys := map[string]bool{}
				for _, t := range rel.ViewAt(hi, ViewOptions{}).Tuples {
					hiKeys[t.Values[0].Data] = true
				}
				for k := range loKeys {
					if !hiKeys[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Filtering is idempotent: viewing an already-filtered relation at the same
// level changes nothing.
func TestQuickViewIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r)
		for _, c := range rel.Scheme.Poset.Labels() {
			once := rel.ViewAt(c, ViewOptions{})
			twice := once.ViewAt(c, ViewOptions{})
			if once.Render() != twice.Render() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Views never leak: every cell in a view at c is classified ⪯ c, and every
// tuple class is ⪯ c.
func TestQuickViewNoReadUp(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r)
		p := rel.Scheme.Poset
		for _, c := range p.Labels() {
			for _, t := range rel.ViewAt(c, ViewOptions{}).Tuples {
				if !p.Dominates(c, t.TC) {
					return false
				}
				for _, v := range t.Values {
					if !p.Dominates(c, v.Class) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Subsumption elimination only removes rows, never invents them, and the
// surviving rows all come from the unsubsumed view.
func TestQuickSubsumptionShrinks(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r)
		for _, c := range rel.Scheme.Poset.Labels() {
			with := rel.ViewAt(c, ViewOptions{})
			without := rel.ViewAt(c, ViewOptions{NoSubsumption: true})
			if with.Len() > without.Len() {
				return false
			}
			all := map[string]bool{}
			for _, row := range without.Rows() {
				all[row] = true
			}
			for _, row := range with.Rows() {
				if !all[row] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Random update/delete sequences preserve the integrity properties.
func TestQuickUpdatesPreserveIntegrity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r)
		p := rel.Scheme.Poset
		levels := p.Labels()
		attrs := []string{"a", "b"}
		for op := 0; op < 6; op++ {
			user := levels[r.Intn(len(levels))]
			key := fmt.Sprintf("k%d", r.Intn(8))
			switch r.Intn(3) {
			case 0:
				rel.Update(user, key, attrs[r.Intn(2)], fmt.Sprintf("w%d", r.Intn(4)))
			case 1:
				rel.Delete(user, key)
			case 2:
				rel.InsertAt(user, fmt.Sprintf("n%d", r.Intn(4)), "x", "y")
			}
		}
		return rel.CheckIntegrity() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
