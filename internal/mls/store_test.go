package mls

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lattice"
)

func TestStoreSessions(t *testing.T) {
	store := NewStore(MissionScheme())
	uSess, err := store.Open(u)
	if err != nil {
		t.Fatal(err)
	}
	sSess, err := store.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open("zz"); err == nil {
		t.Error("unknown clearance must fail")
	}

	// The §3 narrative as two sessions.
	if err := uSess.Insert("phantom", "smuggling", "omega"); err != nil {
		t.Fatal(err)
	}
	if err := sSess.UpdateChain("phantom", u, AttrObjective, "spying"); err != nil {
		t.Fatal(err)
	}
	// U still sees its own story.
	uView := uSess.View()
	if uView.Len() != 1 || uView.Tuples[0].Values[1].Data != "smuggling" {
		t.Fatalf("U view:\n%s", uView.Render())
	}
	// S sees both versions.
	if sView := sSess.View(); sView.Len() != 2 {
		t.Fatalf("S view:\n%s", sView.Render())
	}
	// U deletes; the surprise story remains for S.
	if err := uSess.Delete("phantom"); err != nil {
		t.Fatal(err)
	}
	if sView := sSess.View(); sView.Len() != 1 || sView.Tuples[0].Values[1].Data != "spying" {
		t.Fatalf("surprise story lost:\n%s", sView.Render())
	}
	// The audit trail explains it.
	audit := store.Audit()
	if audit == "" {
		t.Fatal("empty audit")
	}
	blamed := store.Journal().Blame("phantom", u, MissionScheme().Poset)
	if len(blamed) != 1 || blamed[0].Subject != s {
		t.Errorf("blame = %v", blamed)
	}
	if err := store.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestNewStoreFrom(t *testing.T) {
	// A uniformly-classified relation seeds cleanly.
	r := NewRelation(MissionScheme())
	r.MustInsert(Tuple{Values: []Value{V("eagle", u), V("patrolling", u), V("degoba", u)}})
	store, err := NewStoreFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.Open(u)
	if err != nil {
		t.Fatal(err)
	}
	if sess.View().Len() != 1 {
		t.Error("seed lost")
	}
	// Mission has mixed-classification tuples: rejected with a clear error.
	if _, err := NewStoreFrom(Mission()); err == nil {
		t.Error("mixed-classification seed must be rejected")
	}
}

// Concurrent sessions at different clearances: run with -race. Every
// operation either succeeds or fails cleanly, and the final relation
// satisfies the integrity properties.
func TestStoreConcurrentSessions(t *testing.T) {
	store := NewStore(MissionScheme())
	var wg sync.WaitGroup
	for i, lvl := range []lattice.Label{u, c, s} {
		wg.Add(1)
		go func(i int, l lattice.Label) {
			defer wg.Done()
			sess, err := store.Open(l)
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < 20; k++ {
				key := fmt.Sprintf("ship%d", k%5)
				switch k % 4 {
				case 0:
					sess.Insert(key, "obj", "dst") // may conflict; errors are fine
				case 1:
					sess.Update(key, AttrObjective, fmt.Sprintf("o%d_%d", i, k))
				case 2:
					sess.View()
				case 3:
					sess.Delete(key)
				}
			}
		}(i, lvl)
	}
	wg.Wait()
	if err := store.CheckIntegrity(); err != nil {
		t.Fatalf("concurrent sessions broke integrity: %v\n%s", err, store.Audit())
	}
	// Replay determinism survives concurrency (the journal is the serial
	// order the lock imposed).
	replayed, err := store.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Render() != store.Journal().Relation().Render() {
		t.Error("replay diverged after concurrent use")
	}
}
