package mls

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// ParseRelation reads a multilevel relation from a simple text format used
// by the command-line tools:
//
//	relation mission(starship, objective, destination)
//	levels u < c < s
//	tuple avenger:s shipping:s pluto:s @ s
//	tuple phantom:u null:u omega:u @ s
//
// The first attribute is the apparent key. "levels" lines declare a chain;
// "order lo hi" lines add individual covering edges for non-chain lattices.
// Values are value:class pairs, "null" is the null value, and the optional
// "@ tc" suffix sets the tuple class (defaulting to the lub of the cell
// classes). Comment lines start with '#'.
func ParseRelation(src string) (*Relation, error) {
	var (
		name  string
		attrs []string
		poset = lattice.New()
		rows  [][]string
	)
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "relation":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "relation"))
			open := strings.IndexByte(rest, '(')
			if open < 0 || !strings.HasSuffix(rest, ")") {
				return nil, fmt.Errorf("mls: line %d: want relation name(attr, ...)", ln+1)
			}
			name = strings.TrimSpace(rest[:open])
			for _, a := range strings.Split(rest[open+1:len(rest)-1], ",") {
				attrs = append(attrs, strings.TrimSpace(a))
			}
		case "levels":
			parts := strings.Split(strings.TrimSpace(strings.TrimPrefix(line, "levels")), "<")
			var prev lattice.Label
			for i, p := range parts {
				l := lattice.Label(strings.TrimSpace(p))
				poset.Add(l)
				if i > 0 {
					if err := poset.AddOrder(prev, l); err != nil {
						return nil, fmt.Errorf("mls: line %d: %v", ln+1, err)
					}
				}
				prev = l
			}
		case "order":
			if len(fields) != 3 {
				return nil, fmt.Errorf("mls: line %d: want order lo hi", ln+1)
			}
			if err := poset.AddOrder(lattice.Label(fields[1]), lattice.Label(fields[2])); err != nil {
				return nil, fmt.Errorf("mls: line %d: %v", ln+1, err)
			}
		case "tuple":
			rows = append(rows, fields[1:])
		default:
			return nil, fmt.Errorf("mls: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if name == "" || len(attrs) == 0 {
		return nil, fmt.Errorf("mls: missing relation declaration")
	}
	if err := poset.Validate(); err != nil {
		return nil, err
	}
	scheme, err := NewScheme(name, poset, attrs...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(scheme)
	for _, row := range rows {
		var vals []Value
		tc := lattice.NoLabel
		expectTC := false
		for _, f := range row {
			if f == "@" {
				expectTC = true
				continue
			}
			if expectTC {
				tc = lattice.Label(f)
				expectTC = false
				continue
			}
			i := strings.LastIndexByte(f, ':')
			if i < 0 {
				return nil, fmt.Errorf("mls: tuple cell %q is not value:class", f)
			}
			v, cl := f[:i], lattice.Label(f[i+1:])
			if v == "null" {
				vals = append(vals, NullV(cl))
			} else {
				vals = append(vals, V(v, cl))
			}
		}
		if err := rel.Insert(Tuple{Values: vals, TC: tc}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// FormatRelation renders the relation back into ParseRelation's format.
func FormatRelation(r *Relation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "relation %s(%s)\n", r.Scheme.Name, strings.Join(r.Scheme.Attrs, ", "))
	for _, e := range r.Scheme.Poset.CoverEdges() {
		fmt.Fprintf(&b, "order %s %s\n", e[0], e[1])
	}
	for _, l := range r.Scheme.Poset.Labels() {
		if len(r.Scheme.Poset.Covers(l)) == 0 && len(r.Scheme.Poset.DownSet(l)) == 1 {
			// Isolated level: no covering edge mentions it.
			covered := false
			for _, e := range r.Scheme.Poset.CoverEdges() {
				if e[0] == l || e[1] == l {
					covered = true
					break
				}
			}
			if !covered {
				fmt.Fprintf(&b, "levels %s\n", l)
			}
		}
	}
	for _, t := range r.Tuples {
		b.WriteString("tuple")
		for _, v := range t.Values {
			if v.Null {
				fmt.Fprintf(&b, " null:%s", v.Class)
			} else {
				fmt.Fprintf(&b, " %s:%s", v.Data, v.Class)
			}
		}
		fmt.Fprintf(&b, " @ %s\n", t.TC)
		_ = t
	}
	return b.String()
}
