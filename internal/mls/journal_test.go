package mls

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
)

// The §3 Phantom narrative through the journal: the trail explains the
// surprise story.
func TestJournalPhantomNarrative(t *testing.T) {
	j := NewJournal(MissionScheme())
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Insert(u, "phantom", "smuggling", "omega"))
	must(j.Update(s, "phantom", u, AttrObjective, "spying"))
	must(j.Delete(u, "phantom"))

	rel := j.Relation()
	if rel.Len() != 1 {
		t.Fatalf("expected the lone surprise story, got %d tuples:\n%s", rel.Len(), rel.Render())
	}
	if rel.Rows()[0] != "phantom U | spying S | omega U | S" {
		t.Errorf("surprise story = %q", rel.Rows()[0])
	}

	audit := j.Audit()
	for _, want := range []string{
		"u: insert (phantom, smuggling, omega)",
		"s: update phantom [chain u] set objective = spying",
		"u: delete phantom",
	} {
		if !strings.Contains(audit, want) {
			t.Errorf("audit missing %q:\n%s", want, audit)
		}
	}

	// Blame: who above U touched phantom?
	blamed := j.Blame("phantom", u, rel.Scheme.Poset)
	if len(blamed) != 1 || blamed[0].Subject != s {
		t.Errorf("blame = %v, want the S update", blamed)
	}
}

func TestJournalReplayEqualsLive(t *testing.T) {
	j := NewJournal(MissionScheme())
	ops := []func() error{
		func() error { return j.Insert(u, "ship1", "cargo", "mars") },
		func() error { return j.Insert(c, "ship2", "escort", "venus") },
		func() error { return j.Update(s, "ship1", lattice.NoLabel, AttrObjective, "spying") },
		func() error { return j.Update(c, "ship2", c, AttrDestination, "pluto") },
		func() error { return j.Delete(u, "ship1") },
	}
	for _, op := range ops {
		if err := op(); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Render() != j.Relation().Render() {
		t.Errorf("replay diverged:\n%s\nvs\n%s", replayed.Render(), j.Relation().Render())
	}
}

func TestJournalRejectsFailingOps(t *testing.T) {
	j := NewJournal(MissionScheme())
	if err := j.Update(u, "ghost", lattice.NoLabel, AttrObjective, "x"); err == nil {
		t.Error("update of a missing key must fail")
	}
	if err := j.Delete(u, "ghost"); err == nil {
		t.Error("delete of a missing key must fail")
	}
	if len(j.Ops()) != 0 {
		t.Error("failed operations must not be journaled")
	}
}

// Property: random journals replay to the live relation, and the live
// relation always satisfies the integrity properties.
func TestQuickJournalReplayDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		j := NewJournal(MissionScheme())
		levels := []lattice.Label{u, c, s}
		keys := []string{"k0", "k1", "k2"}
		for op := 0; op < 10; op++ {
			subject := levels[r.Intn(3)]
			key := keys[r.Intn(3)]
			switch r.Intn(3) {
			case 0:
				j.Insert(subject, key, "obj", "dst")
			case 1:
				j.Update(subject, key, lattice.NoLabel, AttrObjective, "v"+key)
			case 2:
				j.Delete(subject, key)
			}
		}
		if err := j.Relation().CheckIntegrity(); err != nil {
			return false
		}
		replayed, err := j.Replay()
		if err != nil {
			return false
		}
		return replayed.Render() == j.Relation().Render()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
