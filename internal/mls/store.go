package mls

import (
	"fmt"
	"sync"

	"repro/internal/lattice"
)

// Store is a thread-safe, journal-backed multilevel relation shared by
// concurrent user sessions. Each session is pinned to a clearance at open
// time (§5.2: the context "may be determined at login time") and every
// mutation is attributed and journaled. Reads serve the Jajodia-Sandhu
// view at the session's clearance; mutations go through the required-
// polyinstantiation update semantics.
type Store struct {
	mu sync.RWMutex
	j  *Journal
}

// NewStore creates a store over an empty instance of the scheme.
func NewStore(scheme *Scheme) *Store {
	return &Store{j: NewJournal(scheme)}
}

// NewStoreFrom seeds a store by journaling subject-attributed inserts for
// every tuple of an existing relation whose cells are uniformly classified
// at the tuple's TC; mixed-classification tuples cannot be expressed as a
// single attributed insert and are rejected.
func NewStoreFrom(r *Relation) (*Store, error) {
	s := NewStore(r.Scheme)
	for _, t := range r.Tuples {
		data := make([]string, len(t.Values))
		for i, v := range t.Values {
			if v.Null {
				return nil, fmt.Errorf("mls: NewStoreFrom: null cell cannot be journaled as an insert")
			}
			if v.Class != t.TC {
				return nil, fmt.Errorf("mls: NewStoreFrom: tuple %v is not uniformly classified at its TC", t.Values)
			}
			data[i] = v.Data
		}
		if err := s.j.Insert(t.TC, data...); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Session is a handle pinned to one clearance.
type Session struct {
	store *Store
	level lattice.Label
}

// Open starts a session at the given clearance.
func (s *Store) Open(level lattice.Label) (*Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.j.Relation().Scheme.Poset.Has(level) {
		return nil, fmt.Errorf("mls: unknown clearance %q", level)
	}
	return &Session{store: s, level: level}, nil
}

// Level returns the session's clearance.
func (se *Session) Level() lattice.Label { return se.level }

// View returns the session's Jajodia-Sandhu view (a snapshot — mutations
// after the call do not affect it).
func (se *Session) View() *Relation {
	se.store.mu.RLock()
	defer se.store.mu.RUnlock()
	return se.store.j.Relation().ViewAt(se.level, ViewOptions{})
}

// Snapshot returns a deep copy of the raw relation for belief computation
// at the session's level; callers pass it to the belief package. The copy
// is private to the caller.
func (se *Session) Snapshot() *Relation {
	se.store.mu.RLock()
	defer se.store.mu.RUnlock()
	return se.store.j.Relation().Clone()
}

// Insert writes a tuple at the session's level.
func (se *Session) Insert(data ...string) error {
	se.store.mu.Lock()
	defer se.store.mu.Unlock()
	return se.store.j.Insert(se.level, data...)
}

// Update updates one attribute across the visible chains of the key.
func (se *Session) Update(key, attr, newValue string) error {
	se.store.mu.Lock()
	defer se.store.mu.Unlock()
	return se.store.j.Update(se.level, key, lattice.NoLabel, attr, newValue)
}

// UpdateChain updates one attribute of a single polyinstantiation chain.
func (se *Session) UpdateChain(key string, keyClass lattice.Label, attr, newValue string) error {
	se.store.mu.Lock()
	defer se.store.mu.Unlock()
	return se.store.j.Update(se.level, key, keyClass, attr, newValue)
}

// Delete removes the session's own versions of the keyed tuple.
func (se *Session) Delete(key string) error {
	se.store.mu.Lock()
	defer se.store.mu.Unlock()
	return se.store.j.Delete(se.level, key)
}

// Audit returns the attributed operation log. Access to the audit trail is
// an administrative capability: it is not subject to the visibility rules,
// exactly because answering "who above me wrote this?" (Journal.Blame)
// requires seeing above one's clearance.
func (s *Store) Audit() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j.Audit()
}

// Journal exposes the underlying journal for administrative use (replay,
// blame). The returned journal must not be mutated concurrently with
// sessions; take it after the sessions quiesce.
func (s *Store) Journal() *Journal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j
}

// CheckIntegrity validates the live relation.
func (s *Store) CheckIntegrity() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j.Relation().CheckIntegrity()
}
