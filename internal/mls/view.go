package mls

import (
	"repro/internal/lattice"
)

// ViewOptions tunes ViewAt. The defaults reproduce the paper's Figures 2
// and 3 (filter σ with subsumption elimination).
type ViewOptions struct {
	// NoSubsumption keeps subsumed tuples in the view; used by the
	// subsumption ablation benchmark.
	NoSubsumption bool
}

// ViewAt computes the view of the relation at access class c
// (Definition 2.3 plus the filter function σ of [12]):
//
//   - a tuple appears iff c dominates its apparent-key classification;
//   - attribute values whose classification is not dominated by c are
//     replaced by null classified at the key level (null integrity);
//   - the filtered tuple class is glb(TC, c) — the classification the tuple
//     carries in the c-world (this matches Figures 2 and 3 exactly: Figure 2
//     renders t4 with TC=U, Figure 3 renders the same tuple with TC=C);
//   - subsumed tuples are eliminated: u subsumes v when they agree on the
//     key, every attribute of u equals v's or covers a null of v's, and
//     u's TC dominates v's.
func (r *Relation) ViewAt(c lattice.Label, opts ViewOptions) *Relation {
	out := NewRelation(r.Scheme)
	p := r.Scheme.Poset
	keyIdx := r.Scheme.KeyIdx
	for _, t := range r.Tuples {
		key := t.Values[keyIdx]
		if !p.Dominates(c, key.Class) {
			continue // simple security: the subject cannot even see the key
		}
		vals := make([]Value, len(t.Values))
		for i, v := range t.Values {
			if p.Dominates(c, v.Class) {
				vals[i] = v
			} else {
				vals[i] = NullV(key.Class)
			}
		}
		tc, ok := p.Glb(t.TC, c)
		if !ok {
			// With an incomparable TC the tuple carries no meaningful class
			// in the c-world; fall back to the lub of the visible classes.
			classes := make([]lattice.Label, len(vals))
			for i, v := range vals {
				classes[i] = v.Class
			}
			tc, _ = p.LubAll(classes)
		}
		out.Tuples = append(out.Tuples, Tuple{Values: vals, TC: tc})
	}
	if !opts.NoSubsumption {
		out.Tuples = eliminateSubsumed(r.Scheme, out.Tuples)
	}
	return out
}

// Subsumes reports whether u subsumes v (Definition 5.4's subsumption
// clause, lifted from [12]): same arity, and for every attribute either the
// cells are equal or u has a non-null value where v has a null.
//
// Subsumption compares attribute cells only, not TC: in Figure 3 the tuple
// t8 (TC=U) subsumes t3's filtrate (TC=C) even though its TC is lower.
func (r *Relation) Subsumes(u, v Tuple) bool {
	return subsumes(u, v)
}

func subsumes(u, v Tuple) bool {
	if len(u.Values) != len(v.Values) {
		return false
	}
	for i := range u.Values {
		a, b := u.Values[i], v.Values[i]
		if a.Equal(b) {
			continue
		}
		if !a.Null && b.Null {
			continue
		}
		return false
	}
	return true
}

// eliminateSubsumed removes subsumed tuples, preserving the order of the
// survivors. Among tuples with identical cells (mutual subsumption) only
// those with maximal TC survive, first occurrence winning ties — Figure 3
// keeps the TC=C copy of the Atlantis tuple and drops the TC=U copies.
func eliminateSubsumed(s *Scheme, tuples []Tuple) []Tuple {
	var out []Tuple
	for i, v := range tuples {
		dead := false
		for j, u := range tuples {
			if i == j {
				continue
			}
			if !subsumes(u, v) {
				continue
			}
			if !subsumes(v, u) {
				// u strictly subsumes v: v carries nulls u resolves.
				dead = true
				break
			}
			// Identical cells: keep the maximal-TC copy, earliest first.
			if s.Poset.StrictlyDominates(u.TC, v.TC) ||
				(u.TC == v.TC && j < i) {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, v)
		}
	}
	return out
}

// SurpriseStories returns the tuples in the view at c that carry null
// values — the paper's §3 surprise stories: nulls that flowed down from a
// higher level reveal to the c-subject that a cover story exists (and that
// she was given one herself). Figures 3's t4/t5 are the canonical instance.
func (r *Relation) SurpriseStories(c lattice.Label) []Tuple {
	view := r.ViewAt(c, ViewOptions{})
	var out []Tuple
	for _, t := range view.Tuples {
		for _, v := range t.Values {
			if v.Null {
				out = append(out, t)
				break
			}
		}
	}
	return out
}
