package mls

import (
	"strings"
	"testing"

	"repro/internal/lattice"
)

const (
	u = lattice.Unclassified
	c = lattice.Classified
	s = lattice.Secret
)

func TestMissionFig1(t *testing.T) {
	r := Mission()
	if r.Len() != 10 {
		t.Fatalf("Mission has %d tuples, want 10", r.Len())
	}
	if err := r.CheckIntegrity(); err != nil {
		t.Fatalf("Figure 1 must satisfy the integrity properties: %v", err)
	}
	want := []string{
		"avenger S | shipping S | pluto S | S",
		"atlantis U | diplomacy U | vulcan U | S",
		"voyager U | spying S | mars U | S",
		"phantom U | spying S | omega U | S",
		"phantom C | supply S | venus S | S",
		"atlantis U | diplomacy U | vulcan U | C",
		"atlantis U | diplomacy U | vulcan U | U",
		"voyager U | training U | mars U | U",
		"falcon U | piracy U | venus U | U",
		"eagle U | patrolling U | degoba U | U",
	}
	got := r.Rows()
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("t%d = %q, want %q", i+1, got[i], want[i])
		}
	}
}

func rowsOf(r *Relation) map[string]bool {
	m := map[string]bool{}
	for _, row := range r.Rows() {
		m[row] = true
	}
	return m
}

func assertRows(t *testing.T, got *Relation, want []string) {
	t.Helper()
	gotSet := rowsOf(got)
	if len(gotSet) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(gotSet), len(want), got.Render())
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing row %q; got:\n%s", w, got.Render())
		}
	}
}

// Figure 2: the U-level view of Mission under Jajodia-Sandhu filtering with
// subsumption.
func TestViewAtUFig2(t *testing.T) {
	view := Mission().ViewAt(u, ViewOptions{})
	assertRows(t, view, []string{
		"phantom U | ⊥ U | omega U | U",
		"atlantis U | diplomacy U | vulcan U | U",
		"voyager U | training U | mars U | U",
		"falcon U | piracy U | venus U | U",
		"eagle U | patrolling U | degoba U | U",
	})
}

// Figure 3: the C-level view.
func TestViewAtCFig3(t *testing.T) {
	view := Mission().ViewAt(c, ViewOptions{})
	assertRows(t, view, []string{
		"phantom U | ⊥ U | omega U | C",
		"phantom C | ⊥ C | ⊥ C | C",
		"atlantis U | diplomacy U | vulcan U | C",
		"voyager U | training U | mars U | U",
		"falcon U | piracy U | venus U | U",
		"eagle U | patrolling U | degoba U | U",
	})
}

// §3: the select * query "would produce the entire Mission relation when
// submitted by an user with a S level clearance" — that is the raw filter
// with no subsumption elimination (Figure 1 verbatim). With subsumption the
// cell-equal Atlantis copies collapse onto the maximal-TC one, exactly as
// Figure 3's footnote describes for level C.
func TestViewAtSIsWholeRelation(t *testing.T) {
	raw := Mission().ViewAt(s, ViewOptions{NoSubsumption: true})
	if raw.Len() != 10 {
		t.Fatalf("raw S view should have all 10 tuples, got %d:\n%s", raw.Len(), raw.Render())
	}
	for i, row := range raw.Rows() {
		if row != Mission().Rows()[i] {
			t.Errorf("raw S view row %d = %q, want the Figure 1 tuple %q", i+1, row, Mission().Rows()[i])
		}
	}
	subsumed := Mission().ViewAt(s, ViewOptions{})
	if subsumed.Len() != 8 {
		t.Fatalf("subsumed S view should collapse t6/t7 into t2, got %d:\n%s", subsumed.Len(), subsumed.Render())
	}
}

func TestViewWithoutSubsumptionKeepsClutter(t *testing.T) {
	with := Mission().ViewAt(u, ViewOptions{})
	without := Mission().ViewAt(u, ViewOptions{NoSubsumption: true})
	if without.Len() <= with.Len() {
		t.Errorf("subsumption should remove tuples: with=%d without=%d", with.Len(), without.Len())
	}
	// Eight tuples carry U-classified keys (all but t1 and t5); subsumption
	// merges t2/t6/t7 into one row and removes t3's filtrate (covered by t8).
	if without.Len() != 8 {
		t.Errorf("unsubsumed U view should have 8 rows, got %d:\n%s", without.Len(), without.Render())
	}
}

func TestSurpriseStories(t *testing.T) {
	stories := Mission().SurpriseStories(c)
	if len(stories) != 2 {
		t.Fatalf("C level should see 2 surprise stories (t4, t5), got %d", len(stories))
	}
	storiesU := Mission().SurpriseStories(u)
	if len(storiesU) != 1 {
		t.Fatalf("U level should see 1 surprise story (t4), got %d", len(storiesU))
	}
	storiesS := Mission().SurpriseStories(s)
	if len(storiesS) != 0 {
		t.Fatalf("S level sees everything; no surprises, got %d", len(storiesS))
	}
}

func TestSubsumes(t *testing.T) {
	r := Mission()
	full := Tuple{Values: []Value{V("x", u), V("y", u), V("z", u)}, TC: u}
	holed := Tuple{Values: []Value{V("x", u), NullV(u), V("z", u)}, TC: u}
	if !r.Subsumes(full, holed) {
		t.Error("a tuple must subsume its null-weakening")
	}
	if r.Subsumes(holed, full) {
		t.Error("subsumption must not hold in reverse")
	}
	other := Tuple{Values: []Value{V("x", u), V("w", u), V("z", u)}, TC: u}
	if r.Subsumes(full, other) || r.Subsumes(other, full) {
		t.Error("tuples with conflicting values must not subsume")
	}
}

func TestInsertValidation(t *testing.T) {
	r := NewRelation(MissionScheme())
	// Null key violates entity integrity.
	if err := r.Insert(Tuple{Values: []Value{NullV(u), V("x", u), V("y", u)}}); err == nil {
		t.Error("null apparent key must be rejected")
	}
	// Attribute below key class violates entity integrity.
	if err := r.Insert(Tuple{Values: []Value{V("k", c), V("x", u), V("y", c)}}); err == nil {
		t.Error("attribute classified below the key must be rejected")
	}
	// Null not at key level violates null integrity.
	if err := r.Insert(Tuple{Values: []Value{V("k", u), NullV(c), V("y", u)}}); err == nil {
		t.Error("null not at key class must be rejected")
	}
	// TC below lub of classes.
	if err := r.Insert(Tuple{Values: []Value{V("k", u), V("x", s), V("y", u)}, TC: u}); err == nil {
		t.Error("TC below lub of classes must be rejected")
	}
	// Undeclared level.
	if err := r.Insert(Tuple{Values: []Value{V("k", "zz"), V("x", "zz"), V("y", "zz")}}); err == nil {
		t.Error("undeclared level must be rejected")
	}
	// Wrong arity.
	if err := r.Insert(Tuple{Values: []Value{V("k", u)}}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	// A valid tuple defaults TC to the lub.
	if err := r.Insert(Tuple{Values: []Value{V("k", u), V("x", s), V("y", u)}}); err != nil {
		t.Fatal(err)
	}
	if r.Tuples[0].TC != s {
		t.Errorf("TC should default to lub = s, got %s", r.Tuples[0].TC)
	}
}

func TestPolyinstantiationIntegrity(t *testing.T) {
	// Insert rejects a conflicting cell at the same (key, key class,
	// attribute class) up front.
	r := NewRelation(MissionScheme())
	r.MustInsert(Tuple{Values: []Value{V("k", u), V("a", s), V("y", u)}})
	if err := r.Insert(Tuple{Values: []Value{V("k", u), V("b", s), V("y", u)}}); err == nil {
		t.Error("same (AK, C_AK, C_i) with different values must be rejected at insert time")
	}
	// CheckIntegrity catches the same violation introduced by direct
	// manipulation.
	r.Tuples = append(r.Tuples, Tuple{Values: []Value{V("k", u), V("b", s), V("y", u)}, TC: s})
	if err := r.CheckIntegrity(); err == nil {
		t.Error("direct FD violation must fail CheckIntegrity")
	}
	// Different attribute classes are fine.
	r2 := NewRelation(MissionScheme())
	r2.MustInsert(Tuple{Values: []Value{V("k", u), V("a", s), V("y", u)}})
	r2.MustInsert(Tuple{Values: []Value{V("k", u), V("b", c), V("y", u)}})
	if err := r2.CheckIntegrity(); err != nil {
		t.Errorf("distinct attribute classes should pass: %v", err)
	}
}

func TestMutualSubsumptionRejected(t *testing.T) {
	r := NewRelation(MissionScheme())
	tpl := Tuple{Values: []Value{V("k", u), V("a", u), V("y", u)}, TC: u}
	r.MustInsert(tpl)
	// Insert deduplicates (a relation is a set, Def 2.2)...
	r.MustInsert(Tuple{Values: append([]Value(nil), tpl.Values...), TC: u})
	if r.Len() != 1 {
		t.Fatalf("Insert must deduplicate: %d tuples", r.Len())
	}
	// ...so mutual subsumption can only arise from direct manipulation,
	// which CheckIntegrity still flags.
	r.Tuples = append(r.Tuples, Tuple{Values: append([]Value(nil), tpl.Values...), TC: u})
	if err := r.CheckIntegrity(); err == nil {
		t.Error("duplicate tuples subsume each other and must be rejected")
	}
}

// The paper's §3 narrative: the surprise stories t4 and t5 arise from
// polyinstantiating updates followed by lower-level deletes.
func TestMissionByUpdatesProducesSurpriseStories(t *testing.T) {
	r, err := MissionByUpdates()
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, r, []string{
		"phantom U | spying S | omega U | S", // t4
		"phantom C | supply S | venus S | S", // t5
	})
	if err := r.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// At C the two tuples surface with nulls and do not subsume each other
	// (§3: "tuples t4 and t5 do not subsume each other").
	view := r.ViewAt(c, ViewOptions{})
	assertRows(t, view, []string{
		"phantom U | ⊥ U | omega U | C",
		"phantom C | ⊥ C | ⊥ C | C",
	})
}

func TestUpdateInPlace(t *testing.T) {
	r := NewRelation(MissionScheme())
	if err := r.InsertAt(u, "ship", "cargo", "mars"); err != nil {
		t.Fatal(err)
	}
	n, err := r.Update(u, "ship", AttrObjective, "mining")
	if err != nil || n != 1 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	if r.Len() != 1 {
		t.Fatalf("in-place update must not polyinstantiate: %d tuples", r.Len())
	}
	if r.Tuples[0].Values[1].Data != "mining" {
		t.Errorf("value not updated: %v", r.Tuples[0])
	}
}

func TestUpdateErrors(t *testing.T) {
	r := NewRelation(MissionScheme())
	if err := r.InsertAt(c, "ship", "cargo", "mars"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Update(u, "ship", AttrObjective, "x"); err == nil {
		t.Error("subject below the key class must not update")
	}
	if _, err := r.Update(s, "ship", "bogus", "x"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := r.Update(s, "ghost", AttrObjective, "x"); err == nil {
		t.Error("unknown key must fail")
	}
	if _, err := r.Update(s, "ship", AttrStarship, "x"); err == nil {
		t.Error("key update must fail")
	}
	if _, err := r.Delete(s, "ship"); err == nil {
		t.Error("delete of a tuple owned by another level must fail")
	}
}

func TestRenderContainsHeadersAndRows(t *testing.T) {
	out := Mission().Render()
	for _, want := range []string{"starship", "objective", "destination", "TC", "avenger S", "eagle U"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Mission()
	cl := r.Clone()
	cl.Tuples[0].Values[0] = V("ghost", s)
	if r.Tuples[0].Values[0].Data == "ghost" {
		t.Error("clone must not share cell storage")
	}
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme("r", lattice.UCS()); err == nil {
		t.Error("scheme without attributes must fail")
	}
	if _, err := NewScheme("r", lattice.UCS(), "a", "a"); err == nil {
		t.Error("repeated attribute must fail")
	}
	sch, err := NewScheme("r", lattice.UCS(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sch.AttrIndex("b") != 1 || sch.AttrIndex("zz") != -1 {
		t.Error("AttrIndex broken")
	}
}
