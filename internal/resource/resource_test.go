package resource

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilGovernorIsNoop(t *testing.T) {
	var g *Governor
	if err := g.Step(); err != nil {
		t.Fatalf("nil Step: %v", err)
	}
	if err := g.Insert(100); err != nil {
		t.Fatalf("nil Insert: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if err := g.StratumDone(); err != nil {
		t.Fatalf("nil StratumDone: %v", err)
	}
	if s := g.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil Snapshot = %+v", s)
	}
}

func TestNewReturnsNilWhenUnlimited(t *testing.T) {
	if g := New(context.Background(), Limits{}); g != nil {
		t.Fatal("unlimited background governor should be nil")
	}
	if g := New(context.Background(), Limits{MaxFacts: 1}); g == nil {
		t.Fatal("limited governor must not be nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := New(ctx, Limits{}); g == nil {
		t.Fatal("cancelable governor must not be nil")
	}
}

func TestStepBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxSteps: 10})
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = g.Step()
	}
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != "steps" || be.Limit != 10 {
		t.Fatalf("err = %v, want steps budget", err)
	}
	if !IsLimit(err) {
		t.Fatal("budget error must be a limit error")
	}
	// Sticky: the same failure is observed forever after.
	if err2 := g.Step(); err2 != err {
		t.Fatalf("failure not sticky: %v vs %v", err2, err)
	}
	s := g.Snapshot()
	if !s.Truncated || s.Steps < 10 {
		t.Fatalf("Snapshot = %+v", s)
	}
}

func TestFactAndMemoryBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxFacts: 3})
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		err = g.Insert(8)
	}
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != "facts" {
		t.Fatalf("err = %v, want facts budget", err)
	}

	g = New(context.Background(), Limits{MaxMemory: 100})
	err = nil
	for i := 0; i < 5 && err == nil; i++ {
		err = g.Insert(40)
	}
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("err = %v, want memory budget", err)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := g.Check(); err != nil {
		t.Fatalf("premature cancel: %v", err)
	}
	cancel()
	err := g.Check()
	if !errors.Is(err, ErrCanceled) || !IsLimit(err) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestDeadlineObservedWithinPollInterval(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	g := New(ctx, Limits{})
	start := time.Now()
	var err error
	for err == nil {
		err = g.Step()
		if time.Since(start) > 2*time.Second {
			t.Fatal("deadline never observed")
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestProbeInjection(t *testing.T) {
	boom := errors.New("boom")
	g := New(context.Background(), Limits{Probe: func(ev Event, n int64) error {
		if ev == EventInsert && n == 3 {
			return boom
		}
		return nil
	}})
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		err = g.Insert(1)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected boom", err)
	}
	if g.Snapshot().FactsDerived != 3 {
		t.Fatalf("FactsDerived = %d, want 3", g.Snapshot().FactsDerived)
	}
}

func TestConcurrentStepsRaceClean(t *testing.T) {
	g := New(context.Background(), Limits{MaxSteps: 10_000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g.Step() == nil {
			}
		}()
	}
	wg.Wait()
	var be *ErrBudgetExceeded
	if err := g.Err(); !errors.As(err, &be) {
		t.Fatalf("Err = %v", err)
	}
}

func TestProtect(t *testing.T) {
	f := func() (err error) {
		defer Protect("test.Boundary", &err)
		panic("kaboom")
	}
	err := f()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InternalError", err)
	}
	if ie.Op != "test.Boundary" || fmt.Sprint(ie.Recovered) != "kaboom" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError = %+v", ie)
	}
	// No panic: err passes through untouched.
	g := func() (err error) {
		defer Protect("test.Boundary", &err)
		return errors.New("normal")
	}
	if err := g(); err == nil || err.Error() != "normal" {
		t.Fatalf("pass-through err = %v", err)
	}
}
