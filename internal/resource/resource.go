// Package resource is the evaluation runtime's resource-governance layer:
// wall-clock deadlines (via context.Context), derivation and step budgets,
// and an approximate memory budget, enforced uniformly across every engine
// in the module (the six Datalog strategies, the MultiLog prover and
// reduction, and the belief-SQL engine).
//
// The design goal is graceful degradation: an adversarial or runaway query
// must come back as a typed error with partial statistics, never as a hang
// or a process crash. Engines thread a *Governor through their hot loops;
// the governor turns context cancellation into ErrCanceled and budget
// exhaustion into *ErrBudgetExceeded, both sticky so that concurrent
// workers observe the same first failure.
//
// The package also provides panic containment for the public API and CLI
// boundaries: Protect converts a panic into an *InternalError carrying the
// recovered value and stack, so one bad query cannot take down a serving
// process.
package resource

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// Event names a probe point inside an engine. Probes exist for fault
// injection (internal/faultinject) and observability; production paths pay
// for them only when Limits.Probe is set.
type Event string

const (
	// EventStep fires on every resolution / join / fixpoint step.
	EventStep Event = "step"
	// EventInsert fires after every new fact lands in a derived store.
	EventInsert Event = "insert"
	// EventStratum fires after every completed stratum (bottom-up engines).
	EventStratum Event = "stratum"
)

// ProbeFunc observes a probe point; n is the 1-based count of that event so
// far in the evaluation. A non-nil return aborts the evaluation with that
// error. Probes may be called from multiple goroutines (the parallel
// evaluator) and must be safe for concurrent use.
type ProbeFunc func(ev Event, n int64) error

// Limits bounds an evaluation. The zero value means unlimited; wall-clock
// deadlines come from the context passed to the engine's *Context entry
// point, not from Limits.
type Limits struct {
	// MaxFacts bounds the number of new facts derived (including EDB facts
	// copied into the working store). 0 means unlimited.
	MaxFacts int64
	// MaxSteps bounds the number of resolution/join steps. 0 means
	// unlimited.
	MaxSteps int64
	// MaxMemory approximately bounds the bytes retained by derived facts.
	// The estimate is structural (predicate + argument text), not measured
	// allocation. 0 means unlimited.
	MaxMemory int64
	// Probe, when set, is consulted at every probe point. Used by the
	// fault-injection chaos suite; nil in production.
	Probe ProbeFunc
}

// Unlimited reports whether the limits impose nothing.
func (l Limits) Unlimited() bool {
	return l.MaxFacts == 0 && l.MaxSteps == 0 && l.MaxMemory == 0 && l.Probe == nil
}

// ErrCanceled reports that the evaluation's context was canceled or its
// deadline expired. Match with errors.Is.
var ErrCanceled = errors.New("resource: evaluation canceled")

// ErrBudgetExceeded reports that a resource budget ran out. Match with
// errors.As.
type ErrBudgetExceeded struct {
	Resource string // "facts", "steps" or "memory"
	Used     int64
	Limit    int64
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("resource: %s budget exceeded (%d > %d)", e.Resource, e.Used, e.Limit)
}

// IsLimit reports whether err is a graceful resource-governance stop — a
// cancellation, a budget exhaustion, or a wrapper of either — as opposed to
// a genuine evaluation failure. Engines return partial results alongside
// limit errors.
func IsLimit(err error) bool {
	var be *ErrBudgetExceeded
	return errors.Is(err, ErrCanceled) || errors.As(err, &be)
}

// Stats is the partial-progress report of a governed evaluation, valid
// whether the evaluation completed or was cut short.
type Stats struct {
	Steps           int64 // resolution/join steps taken
	FactsDerived    int64 // new facts inserted into derived stores
	MemoryBytes     int64 // approximate bytes retained by those facts
	StrataCompleted int   // fully evaluated strata (bottom-up engines)
	Truncated       bool  // true when a limit or cancellation stopped evaluation early
}

// pollInterval is how many counted events pass between context polls. Small
// enough that a 50ms deadline is honored within a few hundred microseconds
// of work; large enough that the atomic-add fast path dominates.
const pollInterval = 256

// Governor meters one evaluation against a context and a set of Limits. A
// nil *Governor is valid and meters nothing, so engines can skip allocation
// on the ungoverned fast path. All methods are safe for concurrent use.
type Governor struct {
	ctx    context.Context
	done   <-chan struct{}
	limits Limits

	steps  atomic.Int64
	facts  atomic.Int64
	mem    atomic.Int64
	strata atomic.Int64
	failed atomic.Pointer[failure]
}

type failure struct{ err error }

// New builds a governor for ctx and limits. It returns nil — a valid no-op
// governor — when the context can never cancel and the limits are zero.
func New(ctx context.Context, l Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	if l.Unlimited() && ctx.Done() == nil {
		return nil
	}
	return &Governor{ctx: ctx, done: ctx.Done(), limits: l}
}

// fail records the first error sticky; later failures observe the original.
func (g *Governor) fail(err error) error {
	if g.failed.CompareAndSwap(nil, &failure{err}) {
		return err
	}
	return g.failed.Load().err
}

// Err returns the sticky failure, if any.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// Check polls the context immediately (budget counters are checked where
// they are incremented). Call at loop boundaries that may spin without
// counting steps.
func (g *Governor) Check() error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	if g.done != nil {
		select {
		case <-g.done:
			return g.fail(fmt.Errorf("%w: %v", ErrCanceled, context.Cause(g.ctx)))
		default:
		}
	}
	return nil
}

// Step counts one resolution/join step, enforcing MaxSteps and polling the
// context every pollInterval steps.
func (g *Governor) Step() error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	n := g.steps.Add(1)
	if g.limits.MaxSteps > 0 && n > g.limits.MaxSteps {
		return g.fail(&ErrBudgetExceeded{Resource: "steps", Used: n, Limit: g.limits.MaxSteps})
	}
	if g.limits.Probe != nil {
		if err := g.limits.Probe(EventStep, n); err != nil {
			return g.fail(err)
		}
	}
	if n%pollInterval == 0 {
		return g.Check()
	}
	return nil
}

// Insert counts one new derived fact of approximately `bytes` retained
// bytes, enforcing MaxFacts and MaxMemory.
func (g *Governor) Insert(bytes int64) error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	n := g.facts.Add(1)
	m := g.mem.Add(bytes)
	if g.limits.MaxFacts > 0 && n > g.limits.MaxFacts {
		return g.fail(&ErrBudgetExceeded{Resource: "facts", Used: n, Limit: g.limits.MaxFacts})
	}
	if g.limits.MaxMemory > 0 && m > g.limits.MaxMemory {
		return g.fail(&ErrBudgetExceeded{Resource: "memory", Used: m, Limit: g.limits.MaxMemory})
	}
	if g.limits.Probe != nil {
		if err := g.limits.Probe(EventInsert, n); err != nil {
			return g.fail(err)
		}
	}
	if n%pollInterval == 0 {
		return g.Check()
	}
	return nil
}

// Charge counts bytes retained by auxiliary evaluation structures — symbol
// interner tables, hash indexes — against MaxMemory without counting a
// derived fact. The compiled engine (internal/compile) charges its interner
// and per-pattern indexes here so an adversarial workload exhausts the
// budget as a typed error instead of exhausting the process.
func (g *Governor) Charge(bytes int64) error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	m := g.mem.Add(bytes)
	if g.limits.MaxMemory > 0 && m > g.limits.MaxMemory {
		return g.fail(&ErrBudgetExceeded{Resource: "memory", Used: m, Limit: g.limits.MaxMemory})
	}
	return nil
}

// StratumDone counts one completed stratum and polls the context.
func (g *Governor) StratumDone() error {
	if g == nil {
		return nil
	}
	n := g.strata.Add(1)
	if g.limits.Probe != nil {
		if err := g.limits.Probe(EventStratum, n); err != nil {
			return g.fail(err)
		}
	}
	return g.Check()
}

// Snapshot returns the statistics accumulated so far. Safe to call after
// the evaluation returned, complete or not.
func (g *Governor) Snapshot() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Steps:           g.steps.Load(),
		FactsDerived:    g.facts.Load(),
		MemoryBytes:     g.mem.Load(),
		StrataCompleted: int(g.strata.Load()),
		Truncated:       g.failed.Load() != nil,
	}
}

// InternalError is a contained panic: the public API and CLI boundaries
// recover panics from the engines and surface them as this typed error,
// preserving the recovered value and the goroutine stack.
type InternalError struct {
	Op        string // the boundary that recovered the panic
	Recovered any    // the panic value
	Stack     []byte // stack of the panicking goroutine
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error: %v", e.Op, e.Recovered)
}

// Protect converts a panic in the calling function into an *InternalError
// assigned through errp. Use as the first deferred statement of a boundary
// function with a named error return:
//
//	func Boundary() (err error) {
//		defer resource.Protect("pkg.Boundary", &err)
//		...
//	}
func Protect(op string, errp *error) {
	if r := recover(); r != nil {
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, false)]
		*errp = &InternalError{Op: op, Recovered: r, Stack: buf}
	}
}
