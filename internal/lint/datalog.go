package lint

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/term"
)

// lintDatalogSafety is pass DL001: range restriction, the first Theorem 6.1
// precondition. It reports every unsafe variable, not just the first.
func lintDatalogSafety(r *reporter, p *datalog.Program) {
	for _, c := range p.Clauses {
		for _, u := range datalog.UnsafeVars(c) {
			if u.In == nil {
				d := r.report("DL001", Error, c.Pos(),
					"unsafe clause %s: head variable %s is not range-restricted", c, u.Var)
				d.Fix = fmt.Sprintf("bind %s in a positive body literal", u.Var)
			} else {
				d := r.report("DL001", Error, u.In.Atom.Pos,
					"unsafe clause %s: variable %s in %q is not range-restricted", c, u.Var, u.In)
				d.Fix = fmt.Sprintf("bind %s in a positive body literal before %q", u.Var, u.In)
			}
		}
	}
}

// lintDatalogPredicates is passes DL002 (undefined predicate) and DL003
// (unused predicate). A predicate is defined by any clause head; undefined
// references can never be derived, so a positive use is an error. DL003
// runs only when the program has queries: without a query every predicate
// is a potential output and "unused" is meaningless.
func lintDatalogPredicates(r *reporter, p *datalog.Program) {
	defined := map[string]bool{}
	for _, c := range p.Clauses {
		defined[c.Head.Pred] = true
	}
	seen := map[string]bool{} // report one finding per predicate
	flag := func(a datalog.Atom, negated bool) {
		if a.IsBuiltin() || defined[a.Pred] || seen[a.Pred] {
			return
		}
		seen[a.Pred] = true
		what := "can never be derived"
		if negated {
			what = "makes the negation vacuously true"
		}
		d := r.report("DL002", Error, a.Pos,
			"predicate %s/%d has no facts and no rules; this reference %s", a.Pred, a.Arity(), what)
		d.Fix = fmt.Sprintf("define %s or remove the reference", a.Pred)
	}
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			flag(l.Atom, l.Negated)
		}
	}
	for _, q := range p.Queries {
		flag(q, false)
	}

	if len(p.Queries) == 0 {
		return
	}
	// Reachability from the queried predicates, head -> body.
	uses := map[string][]string{}
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if !l.Atom.IsBuiltin() {
				uses[c.Head.Pred] = append(uses[c.Head.Pred], l.Atom.Pred)
			}
		}
	}
	reach := map[string]bool{}
	var visit func(string)
	visit = func(pred string) {
		if reach[pred] {
			return
		}
		reach[pred] = true
		for _, dep := range uses[pred] {
			visit(dep)
		}
	}
	for _, q := range p.Queries {
		visit(q.Pred)
	}
	reported := map[string]bool{}
	for _, c := range p.Clauses {
		if reach[c.Head.Pred] || reported[c.Head.Pred] {
			continue
		}
		reported[c.Head.Pred] = true
		d := r.report("DL003", Warning, c.Pos(),
			"predicate %s/%d is defined but unreachable from any query", c.Head.Pred, c.Head.Arity())
		d.Fix = fmt.Sprintf("delete the %s clauses or query them", c.Head.Pred)
	}
}

// lintDatalogArity is pass DL004: one predicate name used at two arities.
// The engine keys relations by name alone, so differing arities silently
// partition what the author meant to be one relation.
func lintDatalogArity(r *reporter, p *datalog.Program) {
	type first struct {
		arity int
		pos   datalog.Position
	}
	firsts := map[string]first{}
	check := func(a datalog.Atom) {
		if a.IsBuiltin() {
			return
		}
		f, ok := firsts[a.Pred]
		if !ok {
			firsts[a.Pred] = first{a.Arity(), a.Pos}
			return
		}
		if f.arity != a.Arity() {
			d := r.report("DL004", Error, a.Pos,
				"predicate %s used with arity %d here but arity %d at %s", a.Pred, a.Arity(), f.arity, f.pos)
			d.Fix = fmt.Sprintf("use a single arity for %s", a.Pred)
		}
	}
	for _, c := range p.Clauses {
		check(c.Head)
		for _, l := range c.Body {
			check(l.Atom)
		}
	}
	for _, q := range p.Queries {
		check(q)
	}
}

// alphaKey canonicalises a clause by renaming its variables in first-
// occurrence order, so alpha-equivalent clauses collide.
func alphaKey(c datalog.Clause) string {
	memo := map[string]string{}
	var canon func(t term.Term) term.Term
	canon = func(t term.Term) term.Term {
		switch t.Kind() {
		case term.KindVar:
			n, ok := memo[t.Name()]
			if !ok {
				n = fmt.Sprintf("V%d", len(memo))
				memo[t.Name()] = n
			}
			return term.Var(n)
		case term.KindCompound:
			args := make([]term.Term, len(t.Args()))
			for i, a := range t.Args() {
				args[i] = canon(a)
			}
			return term.Comp(t.Name(), args...)
		}
		return t
	}
	canonAtom := func(a datalog.Atom) datalog.Atom {
		args := make([]term.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = canon(t)
		}
		return datalog.Atom{Pred: a.Pred, Args: args}
	}
	out := datalog.Clause{Head: canonAtom(c.Head)}
	for _, l := range c.Body {
		out.Body = append(out.Body, datalog.Literal{Atom: canonAtom(l.Atom), Negated: l.Negated})
	}
	return out.String()
}

// matchTerm extends s so that pat·s equals t, binding only pat's variables
// (one-way matching, not unification). Reports whether it succeeded.
func matchTerm(pat, t term.Term, s term.Subst) bool {
	switch pat.Kind() {
	case term.KindVar:
		if b, ok := s[pat.Name()]; ok {
			return b.Equal(t)
		}
		s[pat.Name()] = t
		return true
	case term.KindConst:
		return t.Kind() == term.KindConst && t.Name() == pat.Name()
	case term.KindNull:
		return t.Kind() == term.KindNull
	case term.KindCompound:
		if t.Kind() != term.KindCompound || t.Name() != pat.Name() || len(t.Args()) != len(pat.Args()) {
			return false
		}
		for i, pa := range pat.Args() {
			if !matchTerm(pa, t.Args()[i], s) {
				return false
			}
		}
		return true
	}
	return false
}

func matchAtom(pat, a datalog.Atom, s term.Subst) bool {
	if pat.Pred != a.Pred || len(pat.Args) != len(a.Args) {
		return false
	}
	for i, pt := range pat.Args {
		if !matchTerm(pt, a.Args[i], s) {
			return false
		}
	}
	return true
}

// subsumes reports whether general θ-subsumes specific: some substitution θ
// maps general's head onto specific's head and every general body literal
// onto some specific body literal. A subsumed clause derives nothing its
// subsumer does not.
func subsumes(general, specific datalog.Clause) bool {
	if len(general.Body) > len(specific.Body)+2 || len(specific.Body) > 8 {
		return false // keep the backtracking search trivially bounded
	}
	s := term.Subst{}
	if !matchAtom(general.Head, specific.Head, s) {
		return false
	}
	var assign func(i int, s term.Subst) bool
	assign = func(i int, s term.Subst) bool {
		if i == len(general.Body) {
			return true
		}
		g := general.Body[i]
		for _, sp := range specific.Body {
			if sp.Negated != g.Negated {
				continue
			}
			s2 := s.Clone()
			if matchAtom(g.Atom, sp.Atom, s2) && assign(i+1, s2) {
				return true
			}
		}
		return false
	}
	return assign(0, s)
}

// lintDatalogDuplicates is passes DL005 (duplicate rule: alpha-equivalent
// or mutually subsuming) and DL006 (strictly subsumed rule).
func lintDatalogDuplicates(r *reporter, p *datalog.Program) {
	keys := make([]string, len(p.Clauses))
	for i, c := range p.Clauses {
		keys[i] = alphaKey(c)
	}
	flagged := make([]bool, len(p.Clauses))
	for j, cj := range p.Clauses {
		if flagged[j] {
			continue
		}
		for i := 0; i < j; i++ {
			if flagged[i] {
				continue
			}
			ci := p.Clauses[i]
			switch {
			case keys[i] == keys[j] || (subsumes(ci, cj) && subsumes(cj, ci)):
				d := r.report("DL005", Warning, cj.Pos(),
					"duplicate clause: identical (up to variable renaming) to the clause at %s", ci.Pos())
				d.Fix = "delete one of the two clauses"
				flagged[j] = true
			case subsumes(ci, cj):
				d := r.report("DL006", Warning, cj.Pos(),
					"clause %s is subsumed by the more general clause at %s and can never contribute a new fact", cj, ci.Pos())
				d.Fix = "delete the subsumed clause"
				flagged[j] = true
			case subsumes(cj, ci):
				d := r.report("DL006", Warning, ci.Pos(),
					"clause %s is subsumed by the more general clause at %s and can never contribute a new fact", ci, cj.Pos())
				d.Fix = "delete the subsumed clause"
				flagged[i] = true
			}
			if flagged[j] {
				break
			}
		}
	}
}

// supportedPreds computes the set of predicates some engine could in
// principle derive a fact for: a predicate is supported when it has a fact,
// or a rule all of whose positive, non-built-in premises are supported
// (negated literals and built-ins never gate support — negation as failure
// succeeds on underivable predicates).
func supportedPreds(p *datalog.Program) map[string]bool {
	supported := map[string]bool{}
	for _, c := range p.Clauses {
		if c.IsFact() {
			supported[c.Head.Pred] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range p.Clauses {
			if c.IsFact() || supported[c.Head.Pred] {
				continue
			}
			live := true
			for _, l := range c.Body {
				if !l.Negated && !l.Atom.IsBuiltin() && !supported[l.Atom.Pred] {
					live = false
					break
				}
			}
			if live {
				supported[c.Head.Pred] = true
				changed = true
			}
		}
	}
	return supported
}

// DeadRules returns the indices of clauses in p that can provably never
// fire: rules with a positive, non-built-in body literal whose predicate is
// not supported. The fixpoint is sound for every evaluation strategy:
// removing a dead rule never changes any engine's answers (pinned by the
// differential harness's CheckDeadRules).
func DeadRules(p *datalog.Program) []int {
	supported := supportedPreds(p)
	var dead []int
	for i, c := range p.Clauses {
		if c.IsFact() {
			continue
		}
		for _, l := range c.Body {
			if !l.Negated && !l.Atom.IsBuiltin() && !supported[l.Atom.Pred] {
				dead = append(dead, i)
				break
			}
		}
	}
	return dead
}

// lintDatalogDeadRules is pass DL007, reporting each dead rule at the
// unsupportable body literal.
func lintDatalogDeadRules(r *reporter, p *datalog.Program) {
	supported := supportedPreds(p)
	for _, i := range DeadRules(p) {
		c := p.Clauses[i]
		for _, l := range c.Body {
			if l.Negated || l.Atom.IsBuiltin() || supported[l.Atom.Pred] {
				continue
			}
			d := r.report("DL007", Warning, l.Atom.Pos,
				"rule %s can never fire: no fact or live rule derives %s", c, l.Atom.Pred)
			d.Fix = fmt.Sprintf("add facts or live rules for %s, or delete the rule", l.Atom.Pred)
			break
		}
	}
}

// lintDatalogStratify is pass DL008: negation through recursion, with the
// offending dependency cycle spelled out. The finding is anchored at the
// negated body literal that closes the cycle.
func lintDatalogStratify(r *reporter, p *datalog.Program) {
	cycle := datalog.NegativeCycle(p)
	if len(cycle) == 0 {
		return
	}
	// Anchor at the negated literal realising the cycle's negative edge.
	var pos datalog.Position
	var neg datalog.DepEdge
	for _, e := range cycle {
		if e.Negative {
			neg = e
			break
		}
	}
	for _, c := range p.Clauses {
		if c.Head.Pred != neg.From {
			continue
		}
		for _, l := range c.Body {
			if l.Negated && l.Atom.Pred == neg.To {
				pos = l.Atom.Pos
				break
			}
		}
		if pos.IsValid() {
			break
		}
	}
	d := r.report("DL008", Error, pos,
		"program is not stratifiable: negation through recursion: %s", datalog.FormatCycle(cycle))
	d.Fix = fmt.Sprintf("break the cycle through %q, e.g. by splitting %s into a non-recursive predicate", "not "+neg.To, neg.To)
}
