package lint

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
	"repro/internal/term"
)

// piProgram projects the classical fragment of a MultiLog database — the
// Λ and Π clauses and the classical query goals — into a datalog.Program
// so the classical passes can run over it. Non-classical body goals
// (m- and b-atoms in Σ rules) are out of scope here; the MultiLog-specific
// passes cover them.
func piProgram(db *multilog.Database) *datalog.Program {
	p := &datalog.Program{}
	for _, cs := range [][]multilog.Clause{db.Lambda, db.Pi} {
		for _, c := range cs {
			dc := datalog.Clause{Head: c.Head.P}
			for _, g := range c.Body {
				if g.Kind == multilog.GoalP || g.Kind == multilog.GoalL || g.Kind == multilog.GoalH {
					dc.Body = append(dc.Body, datalog.Pos(g.P))
				}
			}
			p.Add(dc)
		}
	}
	for _, q := range db.Queries {
		for _, g := range q {
			if g.Kind == multilog.GoalP || g.Kind == multilog.GoalL || g.Kind == multilog.GoalH {
				p.AddQuery(g.P)
			}
		}
	}
	return p
}

// eachGoal visits every goal of the database — heads and bodies of all
// three components plus the stored queries — with the clause it came from
// (nil for query goals).
func eachGoal(db *multilog.Database, visit func(c *multilog.Clause, g multilog.Goal)) {
	for _, cs := range [][]multilog.Clause{db.Lambda, db.Sigma, db.Pi} {
		for i := range cs {
			c := &cs[i]
			visit(c, c.Head)
			for _, g := range c.Body {
				visit(c, g)
			}
		}
	}
	for _, q := range db.Queries {
		for _, g := range q {
			visit(nil, g)
		}
	}
}

// lintMultiLogSafety reports DL001 range-restriction findings for Σ
// clauses (head variables of an m-clause must be bound by some body goal;
// m-facts must be ground) and DL002 findings for classical predicates
// referenced from Σ bodies or queries but defined nowhere in Λ ∪ Π.
func lintMultiLogSafety(r *reporter, db *multilog.Database) {
	for _, c := range db.Sigma {
		bound := map[string]bool{}
		for _, g := range c.Body {
			for _, v := range g.Vars(nil) {
				bound[v] = true
			}
		}
		for _, v := range c.Head.Vars(nil) {
			if bound[v] {
				continue
			}
			d := r.report("DL001", Error, c.Pos(),
				"unsafe m-clause %s: head variable %s is not range-restricted", c, v)
			d.Fix = fmt.Sprintf("bind %s in a body goal", v)
		}
	}

	defined := map[string]bool{"level": true, "order": true, multilog.UserBelPred: true}
	for _, cs := range [][]multilog.Clause{db.Lambda, db.Pi} {
		for _, c := range cs {
			defined[c.Head.P.Pred] = true
		}
	}
	seen := map[string]bool{}
	eachGoal(db, func(_ *multilog.Clause, g multilog.Goal) {
		if g.Kind != multilog.GoalP || g.P.IsBuiltin() {
			return
		}
		if defined[g.P.Pred] || seen[g.P.Pred] {
			return
		}
		seen[g.P.Pred] = true
		d := r.report("DL002", Error, g.Pos,
			"classical predicate %s/%d has no facts and no rules in Π; this goal can never be proved", g.P.Pred, g.P.Arity())
		d.Fix = fmt.Sprintf("define %s in Π or remove the goal", g.P.Pred)
	})
}

// lintMultiLogBeliefs reports ML001 (malformed m-/b-atoms: null or compound
// security terms) and ML002 (belief-mode misuse: a mode that is neither
// built-in, nor registered, nor defined by the Figure 13 bel/7 facts in Π).
func lintMultiLogBeliefs(r *reporter, db *multilog.Database, opts Options) {
	known := map[multilog.Mode]bool{multilog.ModeFir: true, multilog.ModeOpt: true, multilog.ModeCau: true}
	for _, m := range opts.Modes {
		known[m] = true
	}
	// Modes a user-defined belief could still satisfy: the 7th argument of
	// bel/7 clause heads in Π (a variable head argument admits any mode).
	anyMode := false
	for _, c := range db.Pi {
		a := c.Head.P
		if a.Pred != multilog.UserBelPred || len(a.Args) != 7 {
			continue
		}
		switch mt := a.Args[6]; mt.Kind() {
		case term.KindConst:
			known[multilog.Mode(mt.Name())] = true
		case term.KindVar:
			anyMode = true
		}
	}

	badSecTerm := func(t term.Term) string {
		switch t.Kind() {
		case term.KindNull:
			return "the distinguished null"
		case term.KindCompound:
			return fmt.Sprintf("the compound term %s", t)
		}
		return ""
	}
	eachGoal(db, func(_ *multilog.Clause, g multilog.Goal) {
		if g.Kind != multilog.GoalM && g.Kind != multilog.GoalB {
			return
		}
		if why := badSecTerm(g.M.Level); why != "" {
			d := r.report("ML001", Error, g.Pos,
				"malformed atom %s: security level is %s; levels must be constants or variables", g, why)
			d.Fix = "use a level constant asserted by Λ or a variable"
		}
		if why := badSecTerm(g.M.Class); why != "" {
			d := r.report("ML001", Error, g.Pos,
				"malformed atom %s: classification is %s; classifications must be constants or variables", g, why)
			d.Fix = "use a level constant asserted by Λ or a variable"
		}
		if g.Kind == multilog.GoalB && !anyMode && !known[g.Mode] {
			d := r.report("ML002", Error, g.Pos,
				"unknown belief mode %q: not one of the built-in modes (fir, opt, cau) and Π defines no bel/7 clauses for it", g.Mode)
			d.Fix = fmt.Sprintf("use fir, opt or cau, or add Figure 13 bel/7 clauses defining %q", g.Mode)
		}
	})
}

// lintMultiLogLattice reports ML004 (Definition 5.3 admissibility: Λ must
// define a partial order, and every ground security constant in Σ or the
// queries must be asserted by ⟦Λ⟧) and ML003 (the paper's dominance order:
// a ground atom's assertion level must dominate its classification, c ⪯ s).
func lintMultiLogLattice(r *reporter, db *multilog.Database) {
	poset, err := db.Poset()
	if err != nil {
		var pos datalog.Position
		if len(db.Lambda) > 0 {
			pos = db.Lambda[0].Pos()
		}
		r.report("ML004", Error, pos, "Λ does not define an admissible security lattice: %v", err)
		return
	}
	eachGoal(db, func(_ *multilog.Clause, g multilog.Goal) {
		if g.Kind != multilog.GoalM && g.Kind != multilog.GoalB {
			return
		}
		levelOK, classOK := false, false
		if t := g.M.Level; t.Kind() == term.KindConst {
			if poset.Has(lattice.Label(t.Name())) {
				levelOK = true
			} else {
				d := r.report("ML004", Error, g.Pos,
					"security level %q in %s is not asserted by Λ", t.Name(), g)
				d.Fix = fmt.Sprintf("add level(%s) and its order/2 facts to Λ, or fix the level", t.Name())
			}
		}
		if t := g.M.Class; t.Kind() == term.KindConst {
			if poset.Has(lattice.Label(t.Name())) {
				classOK = true
			} else {
				d := r.report("ML004", Error, g.Pos,
					"classification %q in %s is not asserted by Λ", t.Name(), g)
				d.Fix = fmt.Sprintf("add level(%s) and its order/2 facts to Λ, or fix the classification", t.Name())
			}
		}
		if levelOK && classOK &&
			!poset.Dominates(lattice.Label(g.M.Level.Name()), lattice.Label(g.M.Class.Name())) {
			d := r.report("ML003", Error, g.Pos,
				"atom %s violates the dominance order: assertion level %s does not dominate classification %s (the paper requires c ⪯ s)",
				g, g.M.Level.Name(), g.M.Class.Name())
			d.Fix = fmt.Sprintf("assert the atom at a level dominating %s, or lower the classification", g.M.Class.Name())
		}
	})
}
