package lint

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/multilog"
)

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeadRulesTransitive(t *testing.T) {
	p := mustParse(t, `
		p(a).
		ghost(X) :- phantom(X).
		spectre(X) :- ghost(X), p(X).
		live(X) :- p(X).
	`)
	dead := DeadRules(p)
	if len(dead) != 2 {
		t.Fatalf("DeadRules = %v, want the ghost and spectre rules (2 indices)", dead)
	}
	for _, i := range dead {
		head := p.Clauses[i].Head.Pred
		if head != "ghost" && head != "spectre" {
			t.Errorf("rule %d (%s) marked dead; want only ghost and spectre", i, p.Clauses[i])
		}
	}
}

func TestDeadRulesNegationDoesNotGate(t *testing.T) {
	// A negated literal over an underivable predicate succeeds under NAF,
	// so it must not make the rule dead.
	p := mustParse(t, `
		p(a).
		q(X) :- p(X), not phantom(X).
	`)
	if dead := DeadRules(p); len(dead) != 0 {
		t.Fatalf("DeadRules = %v, want none: negation never gates support", dead)
	}
}

func TestSubsumption(t *testing.T) {
	parse := func(s string) datalog.Clause {
		c, err := datalog.ParseClause(s)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	general := parse("q(X) :- p(X).")
	specific := parse("q(X) :- p(X), r(X).")
	if !subsumes(general, specific) {
		t.Error("q(X) :- p(X) must subsume q(X) :- p(X), r(X)")
	}
	if subsumes(specific, general) {
		t.Error("the longer clause must not subsume the shorter one")
	}
	ground := parse("q(a) :- p(a).")
	if !subsumes(general, ground) {
		t.Error("the general clause must subsume its ground instance")
	}
	if subsumes(ground, general) {
		t.Error("a ground clause must not subsume the general one")
	}
	// Reordered bodies subsume each other (mutual): reported as duplicates.
	ab := parse("q(X) :- p(X), r(X).")
	ba := parse("q(X) :- r(X), p(X).")
	if !subsumes(ab, ba) || !subsumes(ba, ab) {
		t.Error("reordered bodies must mutually subsume")
	}
}

func TestDuplicateUpToReordering(t *testing.T) {
	p := mustParse(t, `
		p(a). r(a).
		q(X) :- p(X), r(X).
		q(Y) :- r(Y), p(Y).
	`)
	r := &reporter{}
	lintDatalogDuplicates(r, p)
	if len(r.diags) != 1 || r.diags[0].Code != "DL005" {
		t.Fatalf("got %v, want one DL005 for the reordered duplicate", r.diags)
	}
}

func TestFromParseError(t *testing.T) {
	_, err := datalog.Parse("p(a.")
	if err == nil {
		t.Fatal("want parse error")
	}
	d := FromParseError("x.dl", err)
	if d.Code != "DL000" || d.Pos.Line != 1 || d.Pos.Col == 0 {
		t.Fatalf("FromParseError = %+v, want DL000 with position on line 1", d)
	}
	_, err = multilog.Parse("level(u")
	if err == nil {
		t.Fatal("want parse error")
	}
	d = FromParseError("x.mlg", err)
	if d.Code != "ML000" || !d.Pos.IsValid() {
		t.Fatalf("FromParseError = %+v, want positioned ML000", d)
	}
}

func TestDiagnosticsSortAndErrors(t *testing.T) {
	ds := Diagnostics{
		{Code: "DL007", Severity: Warning, Pos: datalog.Position{Line: 3, Col: 1}},
		{Code: "DL001", Severity: Error, Pos: datalog.Position{Line: 1, Col: 5}},
		{Code: "DL004", Severity: Error, Pos: datalog.Position{Line: 1, Col: 2}},
	}
	ds.Sort()
	if ds[0].Code != "DL004" || ds[1].Code != "DL001" || ds[2].Code != "DL007" {
		t.Fatalf("sort order wrong: %v", ds)
	}
	if !ds.HasErrors() {
		t.Fatal("HasErrors must be true")
	}
	if (Diagnostics{{Severity: Warning}}).HasErrors() {
		t.Fatal("warnings alone are not errors")
	}
}

func TestPassCatalogCoversAllCodes(t *testing.T) {
	catalog := map[string]bool{}
	for _, pi := range Passes() {
		catalog[pi.Code] = true
	}
	for _, code := range []string{"DL000", "DL001", "DL002", "DL003", "DL004", "DL005", "DL006", "DL007", "DL008", "ML000", "ML001", "ML002", "ML003", "ML004"} {
		if !catalog[code] {
			t.Errorf("pass catalog missing %s", code)
		}
	}
}

func TestUserModeViaBelFacts(t *testing.T) {
	// A non-built-in mode defined by Figure 13 bel/7 facts is not ML002.
	db, err := multilog.Parse(`
		level(u).
		u[p(k: a -u-> v)].
		bel(p, k, a, v, u, u, rumor).
		u[q(k: a -u-> w)] :- u[p(k: a -u-> v)] << rumor.
	`)
	if err != nil {
		t.Fatal(err)
	}
	diags := MultiLog(db, Options{})
	for _, d := range diags {
		if d.Code == "ML002" {
			t.Fatalf("mode rumor is defined by bel/7 facts, got %s", d)
		}
	}
	// The same program without the bel fact is flagged.
	db2, err := multilog.Parse(`
		level(u).
		u[p(k: a -u-> v)].
		u[q(k: a -u-> w)] :- u[p(k: a -u-> v)] << rumor.
	`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range MultiLog(db2, Options{}) {
		found = found || d.Code == "ML002"
	}
	if !found {
		t.Fatal("undefined mode rumor must be ML002")
	}
	// Registering the mode in Options also silences it.
	for _, d := range MultiLog(db2, Options{Modes: []multilog.Mode{"rumor"}}) {
		if d.Code == "ML002" {
			t.Fatalf("registered mode rumor must not be flagged, got %s", d)
		}
	}
}

func TestSourceUnknownLanguage(t *testing.T) {
	if _, err := Source("prolog", "p(a).", Options{}); err == nil || !strings.Contains(err.Error(), "unknown language") {
		t.Fatalf("want unknown-language error, got %v", err)
	}
}
