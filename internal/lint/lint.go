// Package lint is the semantic static-analysis layer for MultiLog and
// Datalog programs: a position-carrying diagnostics framework plus a
// registry of passes that reject and explain bad programs *before*
// evaluation.
//
// The paper's Theorem 6.1 (operational and reduction semantics agree) is
// proved only for well-formed inputs: safe, range-restricted, stratifiable
// clauses whose security components are coherent. The engine checks some of
// these at evaluation time, but reports only the first violation and gives
// no source position. This package collects *all* findings, each carrying a
// stable code, a severity, a file:line:col span, and where possible a
// suggested fix, so that a front-end (cmd/multivet, `multilog check`) can
// present them the way a compiler would.
package lint

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/multilog"
)

// Severity grades a finding.
type Severity int

const (
	// Error findings violate a precondition of the semantics (Theorem 6.1
	// does not apply); the program should not be evaluated.
	Error Severity = iota
	// Warning findings are almost certainly bugs (dead rules, duplicate
	// rules) but do not change the semantics of what remains.
	Warning
	// Info findings are stylistic.
	Info
)

// String renders the severity the way compilers spell it.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic is one finding: a coded, positioned, explained violation.
type Diagnostic struct {
	Code     string           // stable pass code, e.g. "DL001"
	Severity Severity         //
	File     string           // source file name ("" renders as <input>)
	Pos      datalog.Position // 1-based line:col; zero when unknown
	Message  string           // human explanation
	Fix      string           // optional suggested fix
}

// String renders "file:line:col: severity: message [code]" plus the
// suggested fix on a second line when present.
func (d Diagnostic) String() string {
	file := d.File
	if file == "" {
		file = "<input>"
	}
	s := fmt.Sprintf("%s:%s: %s: %s [%s]", file, d.Pos, d.Severity, d.Message, d.Code)
	if d.Fix != "" {
		s += "\n\tfix: " + d.Fix
	}
	return s
}

// Diagnostics is a collection of findings.
type Diagnostics []Diagnostic

// Sort orders findings by position, then code, then message, so output is
// deterministic regardless of pass execution order.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any finding is Error-severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// String renders one finding per line.
func (ds Diagnostics) String() string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// reporter accumulates findings for one file.
type reporter struct {
	file  string
	diags Diagnostics
}

func (r *reporter) report(code string, sev Severity, pos datalog.Position, format string, args ...any) *Diagnostic {
	r.diags = append(r.diags, Diagnostic{
		Code: code, Severity: sev, File: r.file, Pos: pos,
		Message: fmt.Sprintf(format, args...),
	})
	return &r.diags[len(r.diags)-1]
}

// Options configure a lint run.
type Options struct {
	// File names the source in diagnostics.
	File string
	// Modes lists user-defined belief modes (beyond fir/opt/cau) that the
	// deployment registers; references to them are not flagged by ML002.
	Modes []multilog.Mode
}

// PassInfo describes one registered pass for catalogs (-passes, DESIGN.md).
type PassInfo struct {
	Code     string
	Name     string
	Severity Severity
	Lang     string // "datalog", "multilog"
	Doc      string
}

// Passes returns the pass catalog. Datalog passes also run over the
// classical component Π (and the range-restriction pass over Σ) of a
// MultiLog database.
func Passes() []PassInfo {
	return []PassInfo{
		{"DL000", "parse", Error, "datalog", "syntax errors reported by the parser, repositioned as diagnostics"},
		{"DL001", "safety", Error, "datalog", "range restriction: every head variable and every variable under negation or '!=' must be bound by a positive body literal (Theorem 6.1 precondition)"},
		{"DL002", "undefined", Error, "datalog", "a body literal or query references a predicate with no facts and no rules"},
		{"DL003", "unused", Warning, "datalog", "a predicate is defined but unreachable from any query (only runs when the program has queries)"},
		{"DL004", "arity", Error, "datalog", "one predicate used with two different arities; the engine keys relations by name, so this is almost always a typo"},
		{"DL005", "duplicate", Warning, "datalog", "two clauses are identical up to variable renaming"},
		{"DL006", "subsumed", Warning, "datalog", "a clause is subsumed by a more general clause and can never contribute a new fact"},
		{"DL007", "deadrule", Warning, "datalog", "a rule body depends (transitively) on a predicate that no fact or live rule can ever derive; the rule can never fire in any engine"},
		{"DL008", "stratify", Error, "datalog", "negation through recursion; the offending dependency cycle is spelled out (Theorem 6.1 precondition)"},
		{"DL009", "cartesian", Info, "datalog", "a rule body's positive literals split into variable-disjoint groups, so the body computes a cartesian product"},
		{"DL010", "nonlinear", Info, "datalog", "two or more body literals sit in the head's recursive component; seminaive evaluation re-joins each per round"},
		{"DL011", "fanout", Info, "datalog", "the estimated (first-order) join size of a rule body exceeds the fan-out threshold"},
		{"ML000", "parse", Error, "multilog", "syntax errors reported by the parser, repositioned as diagnostics"},
		{"ML001", "malformed-belief", Error, "multilog", "a belief or m-atom whose security level or classification is the distinguished null or a compound term"},
		{"ML002", "belief-mode", Error, "multilog", "a b-atom uses a mode that is neither built-in (fir, opt, cau) nor defined by bel/7 clauses in Pi nor registered"},
		{"ML003", "dominance", Error, "multilog", "a ground m- or b-atom whose assertion level fails to dominate the believed fact's classification in the security lattice (the paper's dominance order c <= s)"},
		{"ML004", "admissible", Error, "multilog", "Definition 5.3 admissibility: a security level or classification constant is not asserted by Lambda, or Lambda does not define a partial order"},
		{"ML005", "downgrade", Warning, "multilog", "downgrade channel: a rule's visible head depends (transitively) on premises classified above the head's level, so low-cleared subjects observe consequences of facts they cannot see"},
		{"ML006", "implicit-mode", Info, "multilog", "a plain m-atom reads a predicate asserted at two comparable levels — raw visibility is the firm mode in disguise, and opt/cau answers diverge"},
		{"ML007", "clearance-dependent", Info, "multilog", "a stored query fixes a level whose derivation cone reaches higher classifications, so its answers vary with the asker's clearance"},
		{"ML008", "unsatisfiable", Warning, "multilog", "no asserted level dominates a rule's head and body levels jointly, so no subject can both fire the rule and see its result"},
	}
}

// Datalog runs all Datalog passes over the program and returns the sorted
// findings.
func Datalog(p *datalog.Program, opts Options) Diagnostics {
	r := &reporter{file: opts.File}
	lintDatalogSafety(r, p)
	lintDatalogPredicates(r, p)
	lintDatalogArity(r, p)
	lintDatalogDuplicates(r, p)
	lintDatalogDeadRules(r, p)
	lintDatalogStratify(r, p)
	lintDatalogCost(r, p)
	r.diags.Sort()
	return r.diags
}

// MultiLog runs all MultiLog passes over the database — the MultiLog-
// specific security checks plus the Datalog passes over the classical
// component Π and range restriction over Σ — and returns sorted findings.
func MultiLog(db *multilog.Database, opts Options) Diagnostics {
	r := &reporter{file: opts.File}
	lintMultiLogSafety(r, db)
	lintMultiLogBeliefs(r, db, opts)
	lintMultiLogLattice(r, db)
	lintMultiLogFlow(r, db)
	// Π is a classical program; every Datalog pass applies to it.
	pi := piProgram(db)
	lintDatalogSafety(r, pi)
	lintDatalogArity(r, pi)
	lintDatalogDuplicates(r, pi)
	lintDatalogStratify(r, pi)
	lintDatalogCost(r, pi)
	r.diags.Sort()
	return r.diags
}

// FromParseError converts a parser error into a positioned diagnostic
// (DL000/ML000). Both front-ends return *datalog.SyntaxError, so the
// position and language come out structurally; errors of any other type
// keep the whole message at position zero.
func FromParseError(file string, err error) Diagnostic {
	d := Diagnostic{Code: "DL000", Severity: Error, File: file, Message: err.Error()}
	var se *datalog.SyntaxError
	if !errors.As(err, &se) {
		return d
	}
	if se.Lang == "multilog" {
		d.Code = "ML000"
	}
	d.Pos = se.Pos
	d.Message = se.Msg
	return d
}

// Source lints Datalog or MultiLog source text. lang is "datalog" or
// "multilog"; a parse failure yields a single DL000/ML000 finding rather
// than an error — the error return is reserved for unknown languages.
func Source(lang, src string, opts Options) (Diagnostics, error) {
	switch lang {
	case "datalog":
		p, err := datalog.Parse(src)
		if err != nil {
			return Diagnostics{FromParseError(opts.File, err)}, nil
		}
		return Datalog(p, opts), nil
	case "multilog":
		db, err := multilog.Parse(src)
		if err != nil {
			return Diagnostics{FromParseError(opts.File, err)}, nil
		}
		return MultiLog(db, opts), nil
	}
	return nil, fmt.Errorf("lint: unknown language %q (want datalog or multilog)", lang)
}
