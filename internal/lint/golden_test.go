package lint

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenCorpus runs the full pass registry over the fixture corpus of
// known-bad (and two known-clean) programs and compares the rendered
// diagnostics — code, severity, file:line:col and message — against the
// checked-in golden files. Regenerate with `go test ./internal/lint -update`.
func TestGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.dl"))
	if err != nil {
		t.Fatal(err)
	}
	mlg, err := filepath.Glob(filepath.Join("testdata", "*.mlg"))
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, mlg...)
	sort.Strings(paths)
	if len(paths) < 12 {
		t.Fatalf("fixture corpus has %d programs, want >= 12", len(paths))
	}

	bad := 0
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lang := "datalog"
			if strings.HasSuffix(path, ".mlg") {
				lang = "multilog"
			}
			diags, err := Source(lang, string(src), Options{File: filepath.Base(path)})
			if err != nil {
				t.Fatal(err)
			}
			got := diags.String()
			goldenPath := path + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
			if len(diags) > 0 {
				bad++
			}
			// Every diagnostic from a fixture must carry a usable position.
			for _, d := range diags {
				if !d.Pos.IsValid() {
					t.Errorf("%s: diagnostic without position: %s", path, d)
				}
			}
		})
	}
	if bad < 12 {
		t.Errorf("corpus has %d programs with findings, want >= 12 known-bad programs", bad)
	}
}
