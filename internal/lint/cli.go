package lint

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/multilog"
)

// langForPath maps a file extension to the lint language, or "" to skip
// the file (e.g. .mlr belongs to mlsql, which has its own checker).
func langForPath(path string) string {
	switch filepath.Ext(path) {
	case ".dl", ".datalog":
		return "datalog"
	case ".mlg", ".multilog":
		return "multilog"
	}
	return ""
}

// CLI is the shared driver behind `multivet` and `multilog check`: it
// expands arguments (directories are walked recursively for lintable
// files), runs every pass over every program, prints findings to stdout,
// and returns a process exit code: 0 clean, 1 findings, 2 usage or I/O
// failure.
func CLI(name string, args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet(name, flag.ContinueOnError)
	fl.SetOutput(stderr)
	strict := fl.Bool("strict", false, "exit non-zero on warnings, not just errors (info findings never fail the run)")
	listPasses := fl.Bool("passes", false, "print the pass catalog and exit")
	sarif := fl.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout (for CI code-scanning upload)")
	modesFlag := fl.String("modes", "", "comma-separated user-defined belief modes to treat as known")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [-strict] [-sarif] [-modes m1,m2] <file-or-dir>...\n", name)
		fmt.Fprintf(stderr, "lints MultiLog (.mlg) and Datalog (.dl) programs; see -passes for the catalog\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *listPasses {
		for _, pi := range Passes() {
			fmt.Fprintf(stdout, "%s %-16s %-8s %-8s %s\n", pi.Code, pi.Name, pi.Lang, pi.Severity, pi.Doc)
		}
		return 0
	}
	if fl.NArg() == 0 {
		fl.Usage()
		return 2
	}
	var opts Options
	if *modesFlag != "" {
		for _, m := range strings.Split(*modesFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				opts.Modes = append(opts.Modes, multilog.Mode(m))
			}
		}
	}

	var files []string
	for _, arg := range fl.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 2
		}
		if !info.IsDir() {
			if langForPath(arg) == "" {
				fmt.Fprintf(stderr, "%s: skipping %s: not a .dl or .mlg file\n", name, arg)
				continue
			}
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && langForPath(path) != "" {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 2
		}
	}
	sort.Strings(files)

	var errors, warnings, infos int
	var all Diagnostics
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 2
		}
		o := opts
		o.File = path
		diags, err := Source(langForPath(path), string(src), o)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 2
		}
		for _, d := range diags {
			if !*sarif {
				fmt.Fprintln(stdout, d)
			}
			switch d.Severity {
			case Error:
				errors++
			case Warning:
				warnings++
			default:
				infos++
			}
		}
		all = append(all, diags...)
	}
	if *sarif {
		if err := WriteSARIF(stdout, name, all); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 2
		}
	} else if errors+warnings+infos > 0 {
		fmt.Fprintf(stdout, "%s: %d file(s) checked: %d error(s), %d warning(s), %d info(s)\n",
			name, len(files), errors, warnings, infos)
	}
	// Info findings are advisory shapes (cost estimates, mode reminders);
	// they never flip the exit code, strict or not.
	if errors > 0 || (*strict && warnings > 0) {
		return 1
	}
	return 0
}
