package lint

// This file holds the whole-program passes: findings computed by
// internal/analysis (monotone fixpoints over the dependency graph) and
// formatted here as diagnostics. Per-rule passes live in datalog.go /
// multilog.go; these passes see the program as one object — a downgrade
// channel or a cartesian product is invisible rule-locally.

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
)

// lintDatalogCost runs the cost/shape analysis: DL009 cartesian-product
// bodies, DL010 nonlinear recursion, DL011 wide-join fan-out. All Info:
// these are performance shapes, not semantic violations.
func lintDatalogCost(r *reporter, p *datalog.Program) {
	cost := analysis.AnalyzeCost(p, analysis.CostOptions{})
	for _, site := range cost.Cartesian {
		parts := make([]string, len(site.Groups))
		for i, g := range site.Groups {
			parts[i] = "{" + strings.Join(g, ", ") + "}"
		}
		d := r.report("DL009", Info, site.Pos,
			"rule body for %s is a cartesian product: %d variable-disjoint groups %s multiply instead of joining",
			site.Head, len(site.Groups), strings.Join(parts, " x "))
		d.Fix = "share a variable between the groups, or split the rule so each product is intentional"
	}
	for _, site := range cost.Nonlinear {
		d := r.report("DL010", Info, site.Pos,
			"nonlinear recursion in rule for %s: %d body literals (%s) are in its recursive component",
			site.Head, len(site.Recursive), strings.Join(site.Recursive, ", "))
		d.Fix = "prefer a linear formulation; seminaive evaluation re-joins every recursive literal each round"
	}
	for _, site := range cost.Fanout {
		d := r.report("DL011", Info, site.Pos,
			"rule body for %s has estimated join fan-out ~%d rows (threshold %d)",
			site.Head, site.Estimate, analysis.DefaultFanoutThreshold)
		d.Fix = "restrict the body with a selective literal before the wide join, or reorder it"
	}
}

// lintMultiLogFlow runs the MLS information-flow analysis: ML005
// downgrade channels, ML006 implicit firm-mode reads over divergent
// predicates, ML007 clearance-dependent stored queries, ML008 rules no
// clearance can both fire and see. A database whose Λ is not a valid
// poset is skipped — ML004 already reports that.
func lintMultiLogFlow(r *reporter, db *multilog.Database) {
	f, err := analysis.AnalyzeFlow(db)
	if err != nil {
		return
	}
	for _, site := range f.Downgrades {
		via := ""
		if site.Via != "" {
			via = fmt.Sprintf(" (via predicate %s)", site.Via)
		}
		d := r.report("ML005", Warning, site.Pos,
			"downgrade channel: rule derives %s at level %s from %s-classified premises%s; subjects cleared below %s can observe consequences of facts they cannot see",
			site.Pred, site.HeadLevel, site.Source, via, site.Source)
		d.Fix = fmt.Sprintf("raise the head's level or classification to dominate %s, or route the flow through an explicit sanitizing predicate", site.Source)
	}
	for _, site := range f.ImplicitModes {
		d := r.report("ML006", Info, site.Pos,
			"plain m-atom reads %s with raw visibility (the firm mode in disguise): it is asserted at comparable levels %s, so optimistic and cautious beliefs diverge here",
			site.Pred, labelList(site.Levels))
		d.Fix = "make the belief mode explicit: << fir, << opt or << cau"
	}
	for _, site := range f.DependentQueries {
		d := r.report("ML007", Info, site.Pos,
			"stored query fixes level %s, but %s's derivations depend on %s-classified data: answers vary with the asker's clearance",
			site.Level, site.Pred, site.Source)
		d.Fix = fmt.Sprintf("query at a level dominating %s, or accept that answers are clearance-scoped", site.Source)
	}
	for _, site := range f.Unsatisfiable {
		d := r.report("ML008", Warning, site.Pos,
			"rule for %s is unsatisfiable: no asserted level dominates all of %s, so no subject can both fire the rule and see its head",
			site.Pred, labelList(site.Levels))
		d.Fix = fmt.Sprintf("assert a level above %s in Lambda, or lower the rule's levels/classifications", labelList(site.Levels))
	}
}

func labelList(labels []lattice.Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = string(l)
	}
	return strings.Join(parts, ", ")
}
