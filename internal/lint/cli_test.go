package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCLICorpusClean pins that every shipped example program and the
// multilog CLI's own fixture lint clean, even in -strict mode: the lint
// passes must never flag programs we hold up as idiomatic.
func TestCLICorpusClean(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{
		"-strict",
		filepath.Join("..", "..", "examples", "programs"),
		filepath.Join("..", "..", "cmd", "multilog", "testdata", "mission.mlg"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("corpus not clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean corpus still produced output:\n%s", out.String())
	}
}

func TestCLIFindingsExitOne(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{filepath.Join("testdata", "unsafe_head.dl")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "DL001") || !strings.Contains(out.String(), "unsafe_head.dl:3:1") {
		t.Fatalf("finding not rendered with code and position:\n%s", out.String())
	}
}

func TestCLIWarningsNeedStrict(t *testing.T) {
	// subsumed_rule.dl produces only warnings: exit 0 normally, 1 under -strict.
	path := filepath.Join("testdata", "subsumed_rule.dl")
	var out, errOut strings.Builder
	if code := CLI("multivet", []string{path}, &out, &errOut); code != 0 {
		t.Fatalf("warnings-only file: exit %d, want 0\n%s", code, out.String())
	}
	if code := CLI("multivet", []string{"-strict", path}, &out, &errOut); code != 1 {
		t.Fatalf("-strict with warnings: exit %d, want 1", code)
	}
}

func TestCLIUsageAndErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := CLI("multivet", nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: multivet") {
		t.Fatalf("usage not printed:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := CLI("multivet", []string{"no/such/file.dl"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

func TestCLISkipsUnknownExtensions(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{filepath.Join("testdata", "clean.dl.golden")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (skipped file)", code)
	}
	if !strings.Contains(errOut.String(), "skipping") {
		t.Fatalf("skip notice missing:\n%s", errOut.String())
	}
}

func TestCLIPassCatalog(t *testing.T) {
	var out, errOut strings.Builder
	if code := CLI("multivet", []string{"-passes"}, &out, &errOut); code != 0 {
		t.Fatalf("-passes: exit %d, want 0", code)
	}
	for _, code := range []string{"DL001", "DL008", "ML003"} {
		if !strings.Contains(out.String(), code) {
			t.Errorf("pass catalog missing %s:\n%s", code, out.String())
		}
	}
}

func TestCLIModesFlag(t *testing.T) {
	// bad_mode.mlg uses the unknown mode "maybe"; registering it via
	// -modes silences ML002.
	path := filepath.Join("testdata", "bad_mode.mlg")
	var out, errOut strings.Builder
	code := CLI("multivet", []string{"-modes", "maybe", path}, &out, &errOut)
	if strings.Contains(out.String(), "ML002") {
		t.Fatalf("-modes maybe did not silence ML002 (exit %d):\n%s", code, out.String())
	}
}
