package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLICorpusClean pins that every shipped example program and the
// multilog CLI's own fixture lint clean, even in -strict mode: the lint
// passes must never flag programs we hold up as idiomatic.
func TestCLICorpusClean(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{
		"-strict",
		filepath.Join("..", "..", "examples", "programs"),
		filepath.Join("..", "..", "cmd", "multilog", "testdata", "mission.mlg"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("corpus not clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean corpus still produced output:\n%s", out.String())
	}
}

func TestCLIFindingsExitOne(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{filepath.Join("testdata", "unsafe_head.dl")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "DL001") || !strings.Contains(out.String(), "unsafe_head.dl:3:1") {
		t.Fatalf("finding not rendered with code and position:\n%s", out.String())
	}
}

func TestCLIWarningsNeedStrict(t *testing.T) {
	// subsumed_rule.dl produces only warnings: exit 0 normally, 1 under -strict.
	path := filepath.Join("testdata", "subsumed_rule.dl")
	var out, errOut strings.Builder
	if code := CLI("multivet", []string{path}, &out, &errOut); code != 0 {
		t.Fatalf("warnings-only file: exit %d, want 0\n%s", code, out.String())
	}
	if code := CLI("multivet", []string{"-strict", path}, &out, &errOut); code != 1 {
		t.Fatalf("-strict with warnings: exit %d, want 1", code)
	}
}

func TestCLIUsageAndErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := CLI("multivet", nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: multivet") {
		t.Fatalf("usage not printed:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := CLI("multivet", []string{"no/such/file.dl"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

func TestCLISkipsUnknownExtensions(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{filepath.Join("testdata", "clean.dl.golden")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (skipped file)", code)
	}
	if !strings.Contains(errOut.String(), "skipping") {
		t.Fatalf("skip notice missing:\n%s", errOut.String())
	}
}

func TestCLIPassCatalog(t *testing.T) {
	var out, errOut strings.Builder
	if code := CLI("multivet", []string{"-passes"}, &out, &errOut); code != 0 {
		t.Fatalf("-passes: exit %d, want 0", code)
	}
	for _, code := range []string{"DL001", "DL008", "ML003"} {
		if !strings.Contains(out.String(), code) {
			t.Errorf("pass catalog missing %s:\n%s", code, out.String())
		}
	}
}

func TestCLIInfoNeverFails(t *testing.T) {
	// cartesian.dl produces only Info findings: exit 0 even under -strict.
	path := filepath.Join("testdata", "cartesian.dl")
	var out, errOut strings.Builder
	if code := CLI("multivet", []string{"-strict", path}, &out, &errOut); code != 0 {
		t.Fatalf("info-only file under -strict: exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "DL009") {
		t.Fatalf("info finding not rendered:\n%s", out.String())
	}
}

func TestCLISARIF(t *testing.T) {
	var out, errOut strings.Builder
	code := CLI("multivet", []string{"-sarif",
		filepath.Join("testdata", "downgrade_channel.mlg"),
		filepath.Join("testdata", "cartesian.dl"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("sarif over warning+info findings: exit %d, want 0\nstderr: %s", code, errOut.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one 2.1.0 run, got version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "multivet" || len(run.Tool.Driver.Rules) != len(Passes()) {
		t.Errorf("driver = %s with %d rules, want multivet with the full pass catalog (%d)",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(Passes()))
	}
	levels := map[string]string{}
	for _, res := range run.Results {
		levels[res.RuleID] = res.Level
		if len(res.Locations) == 0 || res.Locations[0].PhysicalLocation.Region == nil {
			t.Errorf("%s result has no positioned location", res.RuleID)
		}
	}
	if levels["ML005"] != "warning" || levels["DL009"] != "note" {
		t.Errorf("result levels = %v, want ML005=warning, DL009=note", levels)
	}
}

func TestCLIModesFlag(t *testing.T) {
	// bad_mode.mlg uses the unknown mode "maybe"; registering it via
	// -modes silences ML002.
	path := filepath.Join("testdata", "bad_mode.mlg")
	var out, errOut strings.Builder
	code := CLI("multivet", []string{"-modes", "maybe", path}, &out, &errOut)
	if strings.Contains(out.String(), "ML002") {
		t.Fatalf("-modes maybe did not silence ML002 (exit %d):\n%s", code, out.String())
	}
}
