package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 types, minimal subset: enough for GitHub code scanning and
// editors to place the findings. One run, one tool, one result per
// diagnostic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name,omitempty"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps lint severities onto the SARIF level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders the diagnostics as one SARIF 2.1.0 run, the format
// CI systems ingest for inline code annotation. The rule catalog carries
// every registered pass so consumers can show pass documentation even
// for codes with no findings in this run.
func WriteSARIF(w io.Writer, toolName string, diags Diagnostics) error {
	driver := sarifDriver{
		Name:           toolName,
		InformationURI: "https://en.wikipedia.org/wiki/Datalog",
	}
	for _, pi := range Passes() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               pi.Code,
			Name:             pi.Name,
			ShortDescription: sarifMessage{Text: pi.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		msg := d.Message
		if d.Fix != "" {
			msg += " (fix: " + d.Fix + ")"
		}
		res := sarifResult{
			RuleID:  d.Code,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: msg},
		}
		file := d.File
		if file == "" {
			file = "<input>"
		}
		loc := sarifPhysicalLocation{ArtifactLocation: sarifArtifactLocation{URI: file}}
		if d.Pos.Line > 0 {
			loc.Region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col}
		}
		res.Locations = []sarifLocation{{PhysicalLocation: loc}}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
