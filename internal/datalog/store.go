package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Store holds ground facts grouped by predicate, with optional per-argument
// hash indexes to accelerate joins. The zero value is not usable; call
// NewStore.
type Store struct {
	rels     map[string]*relation
	indexing bool
	// InsertFault, when set, is consulted before every insert; a non-nil
	// return aborts the insert with that error. The evaluator propagates the
	// hook from the EDB store to its derived stores, so the fault-injection
	// chaos suite can simulate a failing backing store mid-evaluation.
	InsertFault func(Atom) error
}

// NewStore returns an empty store with argument indexing enabled.
func NewStore() *Store { return &Store{rels: map[string]*relation{}, indexing: true} }

// NewStoreNoIndex returns an empty store with indexing disabled; used by the
// indexing ablation benchmark.
func NewStoreNoIndex() *Store { return &Store{rels: map[string]*relation{}} }

type relation struct {
	facts []Atom         // insertion order (perturbed by Remove's swap-delete)
	seen  map[string]int // fact key -> offset into facts
	// index[pos][key] lists offsets into facts whose argument at pos has
	// that term key. Built lazily per argument position.
	index map[int]map[string][]int
}

func newRelation() *relation {
	return &relation{seen: map[string]int{}, index: map[int]map[string][]int{}}
}

// Insert adds a ground fact; it reports whether the fact was new. Stores
// hold only ground facts, so inserting a non-ground atom is an error (it
// used to panic — a single bad derivation must not take down a server).
func (s *Store) Insert(a Atom) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("datalog: insert of non-ground atom %s", a)
	}
	if s.InsertFault != nil {
		if err := s.InsertFault(a); err != nil {
			return false, err
		}
	}
	r := s.rels[a.Pred]
	if r == nil {
		r = newRelation()
		s.rels[a.Pred] = r
	}
	k := a.Key()
	if _, ok := r.seen[k]; ok {
		return false, nil
	}
	pos := len(r.facts)
	r.seen[k] = pos
	r.facts = append(r.facts, a)
	if s.indexing {
		for i, t := range a.Args {
			m := r.index[i]
			if m == nil {
				m = map[string][]int{}
				r.index[i] = m
			}
			tk := t.Key()
			m[tk] = append(m[tk], pos)
		}
	}
	return true, nil
}

// InsertBatch bulk-loads ground facts of one predicate with their keys
// precomputed by the caller: keys[i] must equal facts[i].Key(), and
// argKeys[i][j], when argKeys is non-nil, must equal facts[i].Args[j].Key().
// It behaves like repeated Insert — duplicates are dropped, the fault hook
// is honored, indexes stay consistent — but presizes the relation's dedup
// and index maps for the whole batch and skips key recomputation, which is
// what makes materializing a large derived model in one shot cheap. It
// returns the number of facts that were new.
func (s *Store) InsertBatch(pred string, facts []Atom, keys []string, argKeys [][]string) (int, error) {
	if len(keys) != len(facts) || (argKeys != nil && len(argKeys) != len(facts)) {
		return 0, fmt.Errorf("datalog: InsertBatch: %d facts with %d keys, %d arg-key rows",
			len(facts), len(keys), len(argKeys))
	}
	r := s.rels[pred]
	if r == nil {
		r = &relation{seen: make(map[string]int, len(facts)), index: map[int]map[string][]int{}}
		s.rels[pred] = r
	}
	added := 0
	for i, a := range facts {
		if !a.IsGround() {
			return added, fmt.Errorf("datalog: insert of non-ground atom %s", a)
		}
		if s.InsertFault != nil {
			if err := s.InsertFault(a); err != nil {
				return added, err
			}
		}
		if _, ok := r.seen[keys[i]]; ok {
			continue
		}
		pos := len(r.facts)
		r.seen[keys[i]] = pos
		r.facts = append(r.facts, a)
		if s.indexing {
			for j, t := range a.Args {
				m := r.index[j]
				if m == nil {
					// No size hint: positions holding low-cardinality
					// constants (levels, modes) would waste a full-width
					// table on a handful of distinct keys.
					m = map[string][]int{}
					r.index[j] = m
				}
				tk := ""
				if argKeys != nil {
					tk = argKeys[i][j]
				} else {
					tk = t.Key()
				}
				m[tk] = append(m[tk], pos)
			}
		}
		added++
	}
	return added, nil
}

// Contains reports whether the ground atom is present.
func (s *Store) Contains(a Atom) bool {
	r := s.rels[a.Pred]
	if r == nil {
		return false
	}
	_, ok := r.seen[a.Key()]
	return ok
}

// Remove deletes a ground fact, reporting whether it was present. Removal
// swap-deletes within the relation, so it invalidates slices previously
// returned by Facts and perturbs insertion order; rendering and query paths
// sort or deduplicate, so observable results are unaffected.
func (s *Store) Remove(a Atom) bool {
	r := s.rels[a.Pred]
	if r == nil {
		return false
	}
	k := a.Key()
	off, ok := r.seen[k]
	if !ok {
		return false
	}
	last := len(r.facts) - 1
	if s.indexing {
		dropOffset(r, r.facts[off], off)
		if off != last {
			replaceOffset(r, r.facts[last], last, off)
		}
	}
	if off != last {
		moved := r.facts[last]
		r.facts[off] = moved
		r.seen[moved.Key()] = off
	}
	r.facts[last] = Atom{} // release the term references
	r.facts = r.facts[:last]
	delete(r.seen, k)
	if len(r.facts) == 0 {
		delete(s.rels, a.Pred)
	}
	return true
}

// dropOffset removes one occurrence of off from every index list of atom a.
func dropOffset(r *relation, a Atom, off int) {
	for i, t := range a.Args {
		m := r.index[i]
		if m == nil {
			continue
		}
		tk := t.Key()
		list := m[tk]
		for j, v := range list {
			if v == off {
				list[j] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(m, tk)
		} else {
			m[tk] = list
		}
	}
}

// replaceOffset rewrites one occurrence of from to to in every index list of
// atom a (the fact that was swapped into the removed slot).
func replaceOffset(r *relation, a Atom, from, to int) {
	for i, t := range a.Args {
		m := r.index[i]
		if m == nil {
			continue
		}
		for j, v := range m[t.Key()] {
			if v == from {
				m[t.Key()][j] = to
				break
			}
		}
	}
}

// Facts returns all facts for a predicate in insertion order. The slice must
// not be modified, and is invalidated by a subsequent Remove.
func (s *Store) Facts(pred string) []Atom {
	r := s.rels[pred]
	if r == nil {
		return nil
	}
	return r.facts
}

// Len returns the total number of facts.
func (s *Store) Len() int {
	n := 0
	for _, r := range s.rels {
		n += len(r.facts)
	}
	return n
}

// Preds returns the predicates present, sorted.
func (s *Store) Preds() []string {
	var out []string
	for p := range s.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Match calls fn for every stored fact of query.Pred that unifies with query
// under an extension of base. fn receives the extended substitution (a fresh
// clone per match) and may return false to stop early. Match uses an
// argument index when the query has a ground argument position.
func (s *Store) Match(query Atom, base term.Subst, fn func(term.Subst) bool) {
	r := s.rels[query.Pred]
	if r == nil {
		return
	}
	candidates := r.facts
	if s.indexing {
		// Pick the most selective index among ground argument positions.
		best := -1
		var bestList []int
		for i, t := range query.Args {
			bound := base.Apply(t)
			if !bound.IsGround() {
				continue
			}
			m := r.index[i]
			if m == nil {
				continue
			}
			list := m[bound.Key()]
			if best == -1 || len(list) < len(bestList) {
				best, bestList = i, list
			}
		}
		if best >= 0 {
			for _, off := range bestList {
				s2 := base.Clone()
				if term.UnifyAll(query.Args, candidates[off].Args, s2) {
					if !fn(s2) {
						return
					}
				}
			}
			return
		}
	}
	for _, f := range candidates {
		if len(f.Args) != len(query.Args) {
			continue
		}
		s2 := base.Clone()
		if term.UnifyAll(query.Args, f.Args, s2) {
			if !fn(s2) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the store. Fault hooks are not cloned: a
// clone is a private working copy, and source facts are ground by invariant.
func (s *Store) Clone() *Store {
	c := &Store{rels: map[string]*relation{}, indexing: s.indexing}
	for _, r := range s.rels {
		for _, f := range r.facts {
			c.Insert(f) //nolint:errcheck // ground by invariant, no fault hook
		}
	}
	return c
}

// String renders all facts sorted, one per line — handy in tests and the CLI.
func (s *Store) String() string {
	var lines []string
	for _, p := range s.Preds() {
		for _, f := range s.rels[p].facts {
			lines = append(lines, f.String()+".")
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
