// Package datalog implements a classical deductive database engine: Datalog
// with stratified negation, equality built-ins, naive and semi-naive
// bottom-up evaluation, and a top-down SLD prover that yields proof trees.
//
// The engine plays the role of CORAL in the paper's §6: MultiLog programs
// are reduced into this language (predicates rel/6 and bel/7 plus the
// Figure 12 axioms) and evaluated here. It is also a complete, standalone
// Datalog implementation, which Proposition 6.1 requires: Datalog must be
// the special case of MultiLog with empty security components.
package datalog

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// Built-in predicate names. Built-ins are evaluated in place, never stored.
const (
	BuiltinEq  = "="  // term equality (unification)
	BuiltinNeq = "!=" // ground disequality
)

// Position is a 1-based source position. The zero Position means "no
// position recorded" (e.g. for programmatically built atoms); IsValid
// distinguishes the two. Parsed programs carry positions so diagnostics
// (internal/lint) can point at the offending clause.
type Position struct {
	Line, Col int
}

// IsValid reports whether the position was recorded by a parser.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the zero position.
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Atom is a predicate applied to terms: p(t1, ..., tn).
type Atom struct {
	Pred string
	Args []term.Term
	Pos  Position // source position of the atom's first token, if parsed
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...term.Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsBuiltin reports whether the atom's predicate is evaluated in place.
func (a Atom) IsBuiltin() bool { return a.Pred == BuiltinEq || a.Pred == BuiltinNeq }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// Apply returns the atom with the substitution applied to every argument.
func (a Atom) Apply(s term.Subst) Atom {
	if len(s) == 0 {
		return a
	}
	args := make([]term.Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Apply(t)
	}
	return Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
}

// Vars appends the variable names occurring in the atom to dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		dst = t.Vars(dst)
	}
	return dst
}

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical map key for the (possibly non-ground) atom.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Key())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the atom in surface syntax; built-ins render infix.
func (a Atom) String() string {
	if a.IsBuiltin() && len(a.Args) == 2 {
		return fmt.Sprintf("%s %s %s", a.Args[0], a.Pred, a.Args[1])
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", term.QuoteIdent(a.Pred), strings.Join(parts, ", "))
}

// Literal is an atom or its negation (negation as failure over a stratified
// program).
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos returns a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Apply applies a substitution to the literal.
func (l Literal) Apply(s term.Subst) Literal {
	return Literal{Atom: l.Atom.Apply(s), Negated: l.Negated}
}

// String renders the literal; negation prints as "not ".
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Clause is a definite clause with optional negated body literals:
// Head :- Body. A clause with an empty body is a fact.
type Clause struct {
	Head Atom
	Body []Literal
}

// Pos returns the clause's source position (its head atom's position).
func (c Clause) Pos() Position { return c.Head.Pos }

// Fact builds a bodyless clause.
func Fact(a Atom) Clause { return Clause{Head: a} }

// Rule builds a clause with the given body.
func Rule(head Atom, body ...Literal) Clause { return Clause{Head: head, Body: body} }

// IsFact reports whether the clause has an empty body.
func (c Clause) IsFact() bool { return len(c.Body) == 0 }

// Vars appends all variable names in the clause to dst.
func (c Clause) Vars(dst []string) []string {
	dst = c.Head.Vars(dst)
	for _, l := range c.Body {
		dst = l.Atom.Vars(dst)
	}
	return dst
}

// Rename returns the clause with all variables renamed apart using r.
func (c Clause) Rename(r *term.Renamer) Clause {
	memo := map[string]string{}
	freshAtom := func(a Atom) Atom {
		args := make([]term.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = r.Fresh(t, memo)
		}
		return Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
	}
	out := Clause{Head: freshAtom(c.Head)}
	for _, l := range c.Body {
		out.Body = append(out.Body, Literal{Atom: freshAtom(l.Atom), Negated: l.Negated})
	}
	return out
}

// String renders the clause in surface syntax.
func (c Clause) String() string {
	if c.IsFact() {
		return c.Head.String() + "."
	}
	parts := make([]string, len(c.Body))
	for i, l := range c.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s :- %s.", c.Head, strings.Join(parts, ", "))
}

// Program is a set of clauses plus optional queries (goal clauses ?- G).
type Program struct {
	Clauses []Clause
	Queries []Atom
}

// Add appends clauses to the program.
func (p *Program) Add(cs ...Clause) { p.Clauses = append(p.Clauses, cs...) }

// AddQuery appends a query goal.
func (p *Program) AddQuery(a Atom) { p.Queries = append(p.Queries, a) }

// Predicates returns the set of predicate names defined or used by the
// program (excluding built-ins), in first-occurrence order.
func (p *Program) Predicates() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name == BuiltinEq || name == BuiltinNeq || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	for _, c := range p.Clauses {
		add(c.Head.Pred)
		for _, l := range c.Body {
			add(l.Atom.Pred)
		}
	}
	for _, q := range p.Queries {
		add(q.Pred)
	}
	return out
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, c := range p.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	for _, q := range p.Queries {
		fmt.Fprintf(&b, "?- %s.\n", q)
	}
	return b.String()
}
