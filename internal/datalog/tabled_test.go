package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func tabledAnswers(t *testing.T, src, goal string) map[string]bool {
	t.Helper()
	p := mustParse(t, src)
	g, err := ParseAtom(goal)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := NewTabled(p).Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, s := range subs {
		out[s.String()] = true
	}
	return out
}

func assertTabledMatchesBottomUp(t *testing.T, src, goal string) {
	t.Helper()
	plain := answersVia(t, Query, src, goal)
	tabled := tabledAnswers(t, src, goal)
	if len(plain) != len(tabled) {
		t.Fatalf("%s: bottom-up %v vs tabled %v", goal, plain, tabled)
	}
	for a := range plain {
		if !tabled[a] {
			t.Errorf("%s: answer %s missing under tabling", goal, a)
		}
	}
}

// The case plain SLD cannot handle: left recursion terminates under
// tabling.
func TestTabledLeftRecursion(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). edge(c, d).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
		tc(X, Y) :- edge(X, Y).
	`
	// Plain SLD diverges (depth bound error)...
	p := mustParse(t, src)
	sld := NewSLD(p)
	sld.MaxDepth = 64
	if _, err := sld.Prove(NewAtom("tc", term.Const("a"), term.Var("W")), 0); err == nil {
		t.Fatal("plain SLD should hit the depth bound on left recursion")
	}
	// ...tabling terminates with the right answers.
	assertTabledMatchesBottomUp(t, src, "tc(a, W)")
	assertTabledMatchesBottomUp(t, src, "tc(X, Y)")
}

func TestTabledMutualRecursion(t *testing.T) {
	src := `
		num(z). num(s(z)). num(s(s(z))). num(s(s(s(z)))).
		even(z).
		even(s(X)) :- num(s(X)), odd(X).
		odd(s(X)) :- num(s(X)), even(X).
	`
	assertTabledMatchesBottomUp(t, src, "even(W)")
	assertTabledMatchesBottomUp(t, src, "odd(W)")
}

func TestTabledNegationAndBuiltins(t *testing.T) {
	src := `
		node(a). node(b). node(c). edge(a, b).
		haspar(Y) :- edge(X, Y).
		root(X) :- node(X), not haspar(X).
		pair(X, Y) :- node(X), node(Y), X != Y.
		tag(X, Y) :- node(X), Y = wrap(X).
	`
	assertTabledMatchesBottomUp(t, src, "root(W)")
	assertTabledMatchesBottomUp(t, src, "pair(X, Y)")
	assertTabledMatchesBottomUp(t, src, "tag(a, W)")
}

func TestTabledGroundAndFailingGoals(t *testing.T) {
	src := `
		edge(a, b). edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`
	if got := tabledAnswers(t, src, "tc(a, c)"); len(got) != 1 {
		t.Errorf("ground true goal: %v", got)
	}
	if got := tabledAnswers(t, src, "tc(c, a)"); len(got) != 0 {
		t.Errorf("ground false goal: %v", got)
	}
	if got := tabledAnswers(t, src, "nosuch(X)"); len(got) != 0 {
		t.Errorf("unknown predicate: %v", got)
	}
}

func TestTabledErrors(t *testing.T) {
	p := mustParse(t, `p(a).`)
	if _, err := NewTabled(p).Prove(NewAtom(BuiltinEq, term.Var("X"), term.Const("a"))); err == nil {
		t.Error("built-in goal must be rejected")
	}
	// Term growth guard: s(X) construction in a recursive head diverges;
	// the round bound converts that into an error.
	p2 := mustParse(t, `
		num(z).
		num(s(X)) :- num(X).
	`)
	tb := NewTabled(p2)
	tb.MaxRounds = 50
	if _, err := tb.Prove(NewAtom("num", term.Var("W"))); err == nil {
		t.Error("unbounded term growth must hit the round bound")
	}
}

func TestTabledVariantSharing(t *testing.T) {
	// tc(a, W) and tc(a, Z) are the same variant; tc(b, W) is not.
	a1 := NewAtom("tc", term.Const("a"), term.Var("W"))
	a2 := NewAtom("tc", term.Const("a"), term.Var("Z"))
	b := NewAtom("tc", term.Const("b"), term.Var("W"))
	if variantKey(a1) != variantKey(a2) {
		t.Error("renamed variants must share a key")
	}
	if variantKey(a1) == variantKey(b) {
		t.Error("different constants must not share a key")
	}
	// Repeated variables matter: p(X, X) differs from p(X, Y).
	c1 := NewAtom("p", term.Var("X"), term.Var("X"))
	c2 := NewAtom("p", term.Var("X"), term.Var("Y"))
	if variantKey(c1) == variantKey(c2) {
		t.Error("repeated-variable patterns must not collide")
	}
}

// Tabling is goal-directed: a bound query over a long chain must not fill
// tables for unreachable nodes.
func TestTabledGoalDirected(t *testing.T) {
	src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	for i := 0; i < 60; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	p := mustParse(t, src)
	tb := NewTabled(p)
	subs, err := tb.Prove(NewAtom("tc", term.Const("n55"), term.Var("W")))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 5 {
		t.Fatalf("tc(n55, W) should have 5 answers, got %d", len(subs))
	}
	if n := tb.totalAnswers(); n > 80 {
		t.Errorf("goal direction failed: %d tabled answers for a 5-answer query", n)
	}
}

// Property: tabled answers equal bottom-up answers on random graphs with a
// left-recursive closure definition.
func TestQuickTabledAgreesWithBottomUp(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		src := `
			tc(X, Z) :- tc(X, Y), edge(Y, Z).
			tc(X, Y) :- edge(X, Y).
		`
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					src += fmt.Sprintf("edge(n%d, n%d).\n", i, j)
				}
			}
		}
		p, err := Parse(src)
		if err != nil {
			return false
		}
		goal := NewAtom("tc", term.Const(fmt.Sprintf("n%d", r.Intn(n))), term.Var("W"))
		plain, err1 := Query(p, nil, goal)
		tabled, err2 := NewTabled(p).Prove(goal)
		if err1 != nil || err2 != nil || len(plain) != len(tabled) {
			return false
		}
		set := map[string]bool{}
		for _, s := range plain {
			set[s.String()] = true
		}
		for _, s := range tabled {
			if !set[s.String()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
