package datalog

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/resource"
	"repro/internal/term"
)

// ProofNode is a node of an SLD proof tree: the proved goal instance and
// the subproofs of the clause body used to prove it. A leaf with Rule ==
// "fact" was matched directly against a fact; Rule == "builtin" records an
// in-place built-in evaluation; otherwise Rule names the clause used
// ("clause <n>").
type ProofNode struct {
	Goal     Atom
	Rule     string
	Children []*ProofNode
}

// Height returns the maximum number of nodes on any root-to-leaf branch,
// matching the paper's definition of proof height (§5.4).
func (n *ProofNode) Height() int {
	h := 0
	for _, c := range n.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Size returns the number of nodes in the tree (§5.4).
func (n *ProofNode) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// String renders the tree indented, one goal per line.
func (n *ProofNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *ProofNode) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s  [%s]\n", strings.Repeat("  ", depth), n.Goal, n.Rule)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// SLD is a top-down resolution prover over a Datalog program. Negated body
// literals are handled by negation-as-failure against a bottom-up model of
// the program, so SLD answers agree with the stratified semantics.
type SLD struct {
	prog     *Program
	model    *Store // for NAF checks; computed lazily on first negation
	renamer  term.Renamer
	MaxDepth int // resolution depth bound; 0 means the default (512)
	// MaxSteps bounds the total number of resolution steps per Prove call.
	// A depth bound alone does not tame left recursion or cyclic data: SLD
	// explores exponentially many bounded-depth paths before ever hitting
	// it. 0 means the default (1 << 20).
	MaxSteps int
	steps    int
	// Limits bounds the proof search (steps, probes); wall-clock deadlines
	// come from the context passed to ProveContext. Zero means unlimited.
	Limits resource.Limits
	// LastStats reports the resource usage of the most recent Prove call.
	LastStats resource.Stats
	gov       *resource.Governor
	ctx       context.Context
}

// NewSLD builds a prover for the program.
func NewSLD(p *Program) *SLD { return &SLD{prog: p} }

// Answer is one solution to a query: the bindings for the goal's variables
// and the proof tree that justifies it.
type Answer struct {
	Bindings term.Subst
	Proof    *ProofNode
}

// Prove enumerates up to max answers for the goal (max ≤ 0 means all). Each
// answer carries a proof tree whose leaves are facts or built-ins.
func (sld *SLD) Prove(goal Atom, max int) ([]Answer, error) {
	return sld.ProveContext(context.Background(), goal, max)
}

// ProveContext is Prove bounded by ctx and sld.Limits. On a resource-limit
// stop (resource.IsLimit(err)) it returns the answers found so far alongside
// the error; sld.LastStats reports the work done.
func (sld *SLD) ProveContext(ctx context.Context, goal Atom, max int) ([]Answer, error) {
	sld.ctx = ctx
	sld.gov = resource.New(ctx, sld.Limits)
	defer func() { sld.LastStats = sld.gov.Snapshot() }()
	depthBound := sld.MaxDepth
	if depthBound == 0 {
		depthBound = 512
	}
	stepBound := sld.MaxSteps
	if stepBound == 0 {
		stepBound = 1 << 20
	}
	sld.steps = 0
	goalVars := goal.Vars(nil)
	var answers []Answer
	seen := map[string]bool{}
	stop := fmt.Errorf("done")
	var solve func(g Atom, s term.Subst, depth int, k func(term.Subst, *ProofNode) error) error
	solve = func(g Atom, s term.Subst, depth int, k func(term.Subst, *ProofNode) error) error {
		if depth > depthBound {
			return fmt.Errorf("datalog: SLD depth bound %d exceeded proving %s", depthBound, g.Apply(s))
		}
		if sld.steps++; sld.steps > stepBound {
			return fmt.Errorf("datalog: SLD step bound %d exceeded proving %s", stepBound, g.Apply(s))
		}
		if err := sld.gov.Step(); err != nil {
			return err
		}
		switch g.Pred {
		case BuiltinEq:
			s2 := s.Clone()
			if term.Unify(g.Args[0], g.Args[1], s2) {
				return k(s2, &ProofNode{Goal: g.Apply(s2), Rule: "builtin"})
			}
			return nil
		case BuiltinNeq:
			inst := g.Apply(s)
			if !inst.IsGround() {
				return fmt.Errorf("datalog: SLD '!=' on non-ground goal %s", inst)
			}
			if !inst.Args[0].Equal(inst.Args[1]) {
				return k(s, &ProofNode{Goal: inst, Rule: "builtin"})
			}
			return nil
		}
		for ci, c := range sld.prog.Clauses {
			if c.Head.Pred != g.Pred || c.Head.Arity() != g.Arity() {
				continue
			}
			rc := c.Rename(&sld.renamer)
			s2 := s.Clone()
			if !term.UnifyAll(g.Args, rc.Head.Args, s2) {
				continue
			}
			ruleName := fmt.Sprintf("clause %d", ci+1)
			if rc.IsFact() {
				ruleName = "fact"
			}
			// Prove the body left to right (negation and '!=' deferred to
			// the end so range-restricted clauses cannot flounder),
			// accumulating subproofs.
			body := OrderBody(rc.Body)
			var proveBody func(i int, s term.Subst, subs []*ProofNode) error
			proveBody = func(i int, s term.Subst, subs []*ProofNode) error {
				if i == len(body) {
					return k(s, &ProofNode{Goal: g.Apply(s), Rule: ruleName, Children: subs})
				}
				l := body[i]
				if l.Negated {
					inst := l.Atom.Apply(s)
					if !inst.IsGround() {
						return fmt.Errorf("datalog: SLD floundering on %s in clause %s", l, c)
					}
					m, err := sld.ensureModel()
					if err != nil {
						return err
					}
					if m.Contains(inst) {
						return nil
					}
					return proveBody(i+1, s, append(subs[:len(subs):len(subs)],
						&ProofNode{Goal: inst, Rule: "naf"}))
				}
				return solve(l.Atom, s, depth+1, func(s2 term.Subst, sub *ProofNode) error {
					return proveBody(i+1, s2, append(subs[:len(subs):len(subs)], sub))
				})
			}
			if err := proveBody(0, s2, nil); err != nil {
				return err
			}
		}
		return nil
	}

	err := solve(goal, term.Subst{}, 0, func(s term.Subst, proof *ProofNode) error {
		bindings := term.Subst{}
		for _, v := range goalVars {
			bindings[v] = s.Apply(term.Var(v))
		}
		key := bindings.String()
		if seen[key] {
			return nil
		}
		seen[key] = true
		answers = append(answers, Answer{Bindings: bindings, Proof: proof})
		if max > 0 && len(answers) >= max {
			return stop
		}
		return nil
	})
	if err != nil && err != stop {
		if resource.IsLimit(err) {
			// Graceful degradation: the answers found before the limit hit.
			return answers, err
		}
		return nil, err
	}
	return answers, nil
}

// ensureModel lazily computes the NAF model, governed by the Prove call's
// context and limits (a fresh budget: the model is a one-off sub-evaluation,
// but it still honors the caller's deadline).
func (sld *SLD) ensureModel() (*Store, error) {
	if sld.model == nil {
		ctx := sld.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		e := Evaluator{Limits: sld.Limits}
		m, err := e.EvalContext(ctx, sld.prog, nil)
		if err != nil {
			return nil, err
		}
		sld.model = m
	}
	return sld.model, nil
}
