package datalog

import (
	"context"
	"fmt"

	"repro/internal/resource"
)

// EvalTrace computes the minimal model like Eval, additionally recording
// for every fact the fixpoint stage at which it first appeared: stage 0
// holds the EDB and stratum facts, and each naive round increments the
// stage. The trace realizes the T_P operator's stage structure that the
// paper's Theorem 6.1 proof sketch appeals to ("the goal τ(G)[θ] is
// computed at step k by the fix-point operator T_Δr").
//
// The evaluation is naive (full rounds), because stage numbers are defined
// by T_P iterations, not by semi-naive delta bookkeeping.
func EvalTrace(p *Program, edb *Store) (*Store, map[string]int, error) {
	return EvalTraceLimited(context.Background(), p, edb, resource.Limits{})
}

// EvalTraceLimited is EvalTrace bounded by ctx and limits: every derived
// fact is charged against the fact and memory budgets, and cancellation is
// polled at round boundaries, so a runaway trace stops with the resource
// error instead of spinning.
func EvalTraceLimited(ctx context.Context, p *Program, edb *Store, limits resource.Limits) (*Store, map[string]int, error) {
	return evalTrace(p, edb, resource.New(ctx, limits))
}

// evalTrace runs the naive staged fixpoint under gov (whose methods are
// nil-safe, so an unbounded run costs only atomic counters).
func evalTrace(p *Program, edb *Store, gov *resource.Governor) (*Store, map[string]int, error) {
	if err := Validate(p); err != nil {
		return nil, nil, err
	}
	strata, err := Strata(p)
	if err != nil {
		return nil, nil, err
	}
	full := NewStore()
	stages := map[string]int{}
	if edb != nil {
		for _, pred := range edb.Preds() {
			for _, f := range edb.Facts(pred) {
				added, err := full.Insert(f)
				if err != nil {
					return nil, nil, err
				}
				if added {
					if err := gov.Insert(approxAtomBytes(f)); err != nil {
						return nil, nil, err
					}
					stages[f.Key()] = 0
				}
			}
		}
	}
	var e Evaluator
	// Offset so stages keep increasing across strata: a stratum's first
	// round continues from the last stage of the previous stratum.
	base := 0
	for _, clauses := range strata {
		var rules []Clause
		for _, c := range clauses {
			if c.IsFact() {
				if !c.Head.IsGround() {
					return nil, nil, fmt.Errorf("datalog: non-ground fact %s", c.Head)
				}
				added, err := full.Insert(c.Head)
				if err != nil {
					return nil, nil, err
				}
				if added {
					if err := gov.Insert(approxAtomBytes(c.Head)); err != nil {
						return nil, nil, err
					}
					stages[c.Head.Key()] = base
				}
			} else {
				rules = append(rules, c)
			}
		}
		for round := 1; ; round++ {
			changed := false
			var derived []Atom
			for _, c := range rules {
				err := e.solveBody(c, full, nil, -1, func(head Atom) error {
					derived = append(derived, head)
					return nil
				})
				if err != nil {
					return nil, nil, err
				}
			}
			for _, head := range derived {
				added, err := full.Insert(head)
				if err != nil {
					return nil, nil, err
				}
				if added {
					if err := gov.Insert(approxAtomBytes(head)); err != nil {
						return nil, nil, err
					}
					stages[head.Key()] = base + round
					changed = true
				}
			}
			if err := gov.Check(); err != nil {
				return nil, nil, err
			}
			if !changed {
				base += round
				break
			}
		}
	}
	return full, stages, nil
}
