package datalog

// OrderBody stably moves '!=' and negated literals after the positive
// ones. The bottom-up evaluator picks body literals dynamically ("first
// ready"), but SLD, tabling, and the magic-sets rewrite consume bodies in
// source order, so a range-restricted clause like
//
//	a() :- a(0), not b(Y), a(Y).
//
// flounders on `not b(Y)` before a(Y) binds Y. Range restriction
// guarantees every variable of a deferred literal occurs in some positive
// literal, so after this reordering those variables are ground when the
// deferred literal is reached. '=' binds and never flounders; it stays in
// place among the positives.
//
// Exported because it *is* the sideways-information-passing order: the
// magic-sets rewrite, SLD, tabling, and the adornment analysis in
// internal/analysis all walk bodies in this order, and they must agree.
func OrderBody(body []Literal) []Literal {
	var pos, deferred []Literal
	for _, l := range body {
		if l.Negated || l.Atom.Pred == BuiltinNeq {
			deferred = append(deferred, l)
		} else {
			pos = append(pos, l)
		}
	}
	if len(deferred) == 0 {
		return body
	}
	return append(pos, deferred...)
}
