package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func answersVia(t *testing.T, fn func(*Program, *Store, Atom) ([]term.Subst, error), src, goal string) map[string]bool {
	t.Helper()
	p := mustParse(t, src)
	g, err := ParseAtom(goal)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := fn(p, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, s := range subs {
		out[s.String()] = true
	}
	return out
}

func assertSameAnswers(t *testing.T, src, goal string) {
	t.Helper()
	plain := answersVia(t, Query, src, goal)
	magic := answersVia(t, QueryMagic, src, goal)
	if len(plain) != len(magic) {
		t.Fatalf("%s: plain %v vs magic %v", goal, plain, magic)
	}
	for a := range plain {
		if !magic[a] {
			t.Errorf("%s: answer %s missing under magic sets", goal, a)
		}
	}
}

func TestMagicTransitiveClosureBound(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). edge(c, d). edge(x, y).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`
	assertSameAnswers(t, src, "tc(a, W)")
	assertSameAnswers(t, src, "tc(a, d)")
	assertSameAnswers(t, src, "tc(W, d)")
	assertSameAnswers(t, src, "tc(X, Y)") // all-free: magic degenerates gracefully
	assertSameAnswers(t, src, "tc(a, nosuch)")
}

func TestMagicSameGeneration(t *testing.T) {
	src := `
		par(c1, p). par(c2, p). par(g1, c1). par(g2, c2).
		person(c1). person(c2). person(g1). person(g2). person(p).
		sg(X, X) :- person(X).
		sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
	`
	assertSameAnswers(t, src, "sg(g1, W)")
	assertSameAnswers(t, src, "sg(g1, g2)")
}

func TestMagicWithEDBNegationAndBuiltins(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). blocked(b).
		path(X, Y) :- edge(X, Y), not blocked(Y).
		path(X, Z) :- edge(X, Y), not blocked(Y), path(Y, Z), Y != Z.
	`
	assertSameAnswers(t, src, "path(a, W)")
}

func TestMagicRejectsIDBNegation(t *testing.T) {
	src := `
		node(a). node(b). edge(a, b).
		haspar(Y) :- edge(X, Y).
		root(X) :- node(X), not haspar(X).
	`
	p := mustParse(t, src)
	g, _ := ParseAtom("root(W)")
	if _, _, err := MagicSet(p, g); err == nil {
		t.Fatal("negation over IDB must be rejected by the transform")
	}
	// But QueryMagic falls back and still answers correctly.
	assertSameAnswers(t, src, "root(W)")
}

func TestMagicEDBQueryPassthrough(t *testing.T) {
	src := `edge(a, b). edge(b, c).`
	p := mustParse(t, src)
	g, _ := ParseAtom("edge(a, W)")
	rw, goal, err := MagicSet(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if rw != p || goal.Pred != "edge" {
		t.Error("EDB queries should pass through untransformed")
	}
}

func TestMagicIDBFactsGuarded(t *testing.T) {
	src := `
		tc(seed, seed).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
		edge(a, seed). edge(seed, b).
	`
	assertSameAnswers(t, src, "tc(a, W)")
}

// The point of the transformation: a bound query over a long chain must
// not materialize the full quadratic closure.
func TestMagicRestrictsDerivations(t *testing.T) {
	src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	for i := 0; i < 60; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	p := mustParse(t, src)
	goal, _ := ParseAtom("tc(n55, W)")

	var full Evaluator
	if _, err := full.Eval(p, nil); err != nil {
		t.Fatal(err)
	}
	rewritten, adorned, err := MagicSet(p, goal)
	if err != nil {
		t.Fatal(err)
	}
	var restricted Evaluator
	model, err := restricted.Eval(rewritten, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restricted.Stats.Derivations*4 > full.Stats.Derivations {
		t.Errorf("magic should cut derivations by far more than 4x: full=%d magic=%d",
			full.Stats.Derivations, restricted.Stats.Derivations)
	}
	if got := QueryStore(model, adorned); len(got) != 5 {
		t.Errorf("tc(n55, W) should reach 5 nodes, got %d", len(got))
	}
}

func TestMagicAdornedNames(t *testing.T) {
	p := mustParse(t, `
		edge(a, b).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`)
	goal, _ := ParseAtom("tc(a, W)")
	rw, adorned, err := MagicSet(p, goal)
	if err != nil {
		t.Fatal(err)
	}
	if adorned.Pred != "tc__bf" {
		t.Errorf("adorned goal = %s", adorned.Pred)
	}
	text := rw.String()
	for _, want := range []string{"m__tc__bf(a).", "tc__bf(X, Y) :- m__tc__bf(X), edge(X, Y).", "m__tc__bf(Y) :- m__tc__bf(X), edge(X, Y)."} {
		if !strings.Contains(text, want) {
			t.Errorf("rewritten program missing %q:\n%s", want, text)
		}
	}
}

// Property: plain and magic evaluation agree on random acyclic graphs and
// random bound/free query mixes.
func TestQuickMagicAgreesWithPlain(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		src := `
			tc(X, Y) :- edge(X, Y).
			tc(X, Z) :- edge(X, Y), tc(Y, Z).
		`
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					src += fmt.Sprintf("edge(n%d, n%d).\n", i, j)
				}
			}
		}
		p, err := Parse(src)
		if err != nil {
			return false
		}
		goals := []Atom{
			NewAtom("tc", term.Const(fmt.Sprintf("n%d", r.Intn(n))), term.Var("W")),
			NewAtom("tc", term.Var("W"), term.Const(fmt.Sprintf("n%d", r.Intn(n)))),
			NewAtom("tc", term.Var("X"), term.Var("Y")),
		}
		for _, g := range goals {
			plain, err1 := Query(p, nil, g)
			magic, err2 := QueryMagic(p, nil, g)
			if err1 != nil || err2 != nil || len(plain) != len(magic) {
				return false
			}
			set := map[string]bool{}
			for _, s := range plain {
				set[s.String()] = true
			}
			for _, s := range magic {
				if !set[s.String()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
