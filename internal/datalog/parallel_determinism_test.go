package datalog_test

// Determinism audit for evalStratumParallel, in an external test package so
// it can drive the evaluator with internal/workload's generators (workload
// imports datalog, so an internal test would cycle).
//
// The parallel stratum loop is only safe because of two invariants:
// (1) jobs read the shared store but never write it — all derivations merge
// sequentially at round boundaries, and (2) the merge consumes job results
// in job order, so insertion order (and hence Store iteration order) cannot
// depend on goroutine scheduling. These tests pin both: run under
// `go test -race -run TestParallel -count=10 ./internal/datalog/` to let the
// race detector check (1) while repeated runs check (2).

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/workload"
)

// models returns the full model rendered canonically (sorted) and in raw
// insertion order (order-sensitive), for a given evaluator configuration.
func models(t *testing.T, p *datalog.Program, e *datalog.Evaluator) (canonical, insertion string) {
	t.Helper()
	m, err := e.Eval(p, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	var raw []string
	for _, pred := range m.Preds() {
		for _, f := range m.Facts(pred) {
			raw = append(raw, f.String())
		}
	}
	insertion = strings.Join(raw, "\n")
	sorted := append([]string(nil), raw...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\n"), insertion
}

// TestParallelMatchesSequential: the parallel evaluator derives exactly the
// sequential semi-naive model on every generated family, across seeds and
// worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for fam := 0; fam < workload.NumDatalogFamilies; fam++ {
			prog, _ := workload.DatalogProgram(workload.DatalogConfig{
				Family: workload.DatalogFamily(fam),
				Size:   4 + int(seed)%6,
				Seed:   seed,
			})
			seq, _ := models(t, prog, &datalog.Evaluator{})
			for _, workers := range []int{1, 2, 8} {
				par, _ := models(t, prog, &datalog.Evaluator{Parallel: true, Workers: workers})
				if par != seq {
					t.Fatalf("family %d seed %d workers %d: parallel model differs from sequential\nsequential:\n%s\nparallel:\n%s",
						fam, seed, workers, seq, par)
				}
			}
		}
	}
}

// TestParallelDeterministicOrder: repeated parallel runs of the same program
// produce byte-identical stores including insertion order. Round-boundary
// merging consumes worker results in job order, so goroutine scheduling must
// not leak into the result; this is the regression test for that invariant.
func TestParallelDeterministicOrder(t *testing.T) {
	prog, _ := workload.DatalogProgram(workload.DatalogConfig{
		Family: workload.FamGraphTC, Size: 9, Seed: 5,
	})
	_, first := models(t, prog, &datalog.Evaluator{Parallel: true, Workers: 8})
	for run := 1; run < 10; run++ {
		_, got := models(t, prog, &datalog.Evaluator{Parallel: true, Workers: 8})
		if got != first {
			t.Fatalf("run %d: parallel insertion order differs from run 0:\nfirst:\n%s\ngot:\n%s", run, first, got)
		}
	}
}

// TestParallelStatsStable: the derivation count (the only stat workers feed)
// is also scheduling-independent, because it is incremented in the
// sequential merge.
func TestParallelStatsStable(t *testing.T) {
	prog, _ := workload.DatalogProgram(workload.DatalogConfig{
		Family: workload.FamSameGen, Size: 7, Seed: 3,
	})
	e0 := &datalog.Evaluator{Parallel: true, Workers: 8}
	if _, err := e0.Eval(prog, nil); err != nil {
		t.Fatalf("eval: %v", err)
	}
	for run := 1; run < 5; run++ {
		e := &datalog.Evaluator{Parallel: true, Workers: 8}
		if _, err := e.Eval(prog, nil); err != nil {
			t.Fatalf("eval: %v", err)
		}
		if e.Stats.Derivations != e0.Stats.Derivations || e.Stats.Facts != e0.Stats.Facts {
			t.Fatalf("run %d: stats differ: %+v vs %+v", run, e.Stats, e0.Stats)
		}
	}
}
