package datalog

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/resource"
	"repro/internal/term"
)

// Tabled is a top-down evaluator with tabling (OLDT-style answer
// memoization): answers for every subgoal variant are accumulated in
// tables, and recursive calls consume tabled answers instead of re-deriving
// them, so left-recursive programs — on which plain SLD loops — terminate.
//
// Tabling is goal-directed like SLD but complete like bottom-up: it
// computes only the subgoal variants the query actually reaches, making it
// the dynamic counterpart of the static magic-sets rewriting (the two are
// compared by BenchmarkTabledVsMagic).
//
// Negated literals are checked against a bottom-up model of the program,
// as in SLD, so answers agree with the stratified semantics.
type Tabled struct {
	prog    *Program
	tables  map[string]*answerTable
	model   *Store // lazily computed for NAF checks
	renamer term.Renamer
	// MaxRounds bounds the per-table fixpoint rounds, guarding against
	// programs that grow terms without bound (tabling, like Datalog
	// itself, assumes an essentially function-free active domain).
	// 0 means the default (10000).
	MaxRounds int
	// Limits bounds the proof search; deadlines come from the context
	// passed to ProveContext. Zero means unlimited.
	Limits resource.Limits
	// LastStats reports the resource usage of the most recent Prove call.
	LastStats resource.Stats
	gov       *resource.Governor
	ctx       context.Context
}

type answerTable struct {
	goal    Atom // the canonical variant
	answers []Atom
	seen    map[string]bool
}

// NewTabled builds a tabled evaluator for the program.
func NewTabled(p *Program) *Tabled {
	return &Tabled{prog: p, tables: map[string]*answerTable{}}
}

// variantKey canonicalizes a goal up to variable renaming so that variant
// subgoals share one table.
func variantKey(a Atom) string {
	memo := map[string]string{}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	var walk func(t term.Term)
	walk = func(t term.Term) {
		switch t.Kind() {
		case term.KindVar:
			name, ok := memo[t.Name()]
			if !ok {
				name = fmt.Sprintf("_V%d", len(memo))
				memo[t.Name()] = name
			}
			b.WriteString(name)
		case term.KindNull:
			b.WriteString("null")
		case term.KindConst:
			b.WriteString("c:")
			b.WriteString(t.Name())
		case term.KindCompound:
			b.WriteString(t.Name())
			b.WriteByte('(')
			for i, arg := range t.Args() {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(arg)
			}
			b.WriteByte(')')
		}
	}
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		walk(t)
	}
	b.WriteByte(')')
	return b.String()
}

// Prove returns every substitution (restricted to the goal's variables)
// making the goal true, in a deterministic order.
func (tb *Tabled) Prove(goal Atom) ([]term.Subst, error) {
	return tb.ProveContext(context.Background(), goal)
}

// ProveContext is Prove bounded by ctx and tb.Limits. On a resource-limit
// stop (resource.IsLimit(err)) it returns the answers tabled so far
// alongside the error; tb.LastStats reports the work done.
func (tb *Tabled) ProveContext(ctx context.Context, goal Atom) ([]term.Subst, error) {
	if goal.IsBuiltin() {
		return nil, fmt.Errorf("datalog: cannot table a built-in goal %s", goal)
	}
	tb.ctx = ctx
	tb.gov = resource.New(ctx, tb.Limits)
	defer func() { tb.LastStats = tb.gov.Snapshot() }()
	_, err := tb.solve(goal)
	if err != nil {
		// No partial answers on a limit stop: tabled answers are defined at
		// the fixpoint, and collecting a huge half-built table would blow the
		// caller's deadline it just enforced. LastStats still reports the
		// partial progress.
		return nil, err
	}
	return tb.collect(goal, tb.ensureTable(goal)), nil
}

// collect restricts a table's answers to the goal's variables, deduplicated
// and sorted.
func (tb *Tabled) collect(goal Atom, tab *answerTable) []term.Subst {
	goalVars := map[string]bool{}
	for _, v := range goal.Vars(nil) {
		goalVars[v] = true
	}
	var out []term.Subst
	seen := map[string]bool{}
	for _, ans := range tab.answers {
		s := term.Subst{}
		if !term.UnifyAll(goal.Args, ans.Args, s) {
			continue
		}
		restricted := term.Subst{}
		for v := range goalVars {
			restricted[v] = s.Apply(term.Var(v))
		}
		key := restricted.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, restricted)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// solve registers the goal's variant and drives the global fixpoint: every
// registered table is re-passed until no table grows and no new variant
// appears. This is "tabling as goal-driven bottom-up": only variants the
// query transitively reaches get tables, and each pass consumes the
// answers accumulated so far, so mutual recursion converges without any
// premature completion.
func (tb *Tabled) solve(goal Atom) (*answerTable, error) {
	tab := tb.ensureTable(goal)
	maxRounds := tb.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10000
	}
	for round := 0; ; round++ {
		if round > maxRounds {
			return tab, fmt.Errorf("datalog: tabling exceeded %d rounds on %s (non-terminating term growth?)", maxRounds, goal)
		}
		if err := tb.gov.Check(); err != nil {
			return tab, err
		}
		answersBefore := tb.totalAnswers()
		tablesBefore := len(tb.tables)
		var keys []string
		for k := range tb.tables {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if err := tb.onePass(tb.tables[key]); err != nil {
				return tab, err
			}
		}
		if tb.totalAnswers() == answersBefore && len(tb.tables) == tablesBefore {
			return tab, nil
		}
	}
}

// ensureTable registers a variant without driving it.
func (tb *Tabled) ensureTable(goal Atom) *answerTable {
	key := variantKey(goal)
	if tab, ok := tb.tables[key]; ok {
		return tab
	}
	tab := &answerTable{goal: goal, seen: map[string]bool{}}
	tb.tables[key] = tab
	return tab
}

// onePass runs every matching clause once against the table's goal.
func (tb *Tabled) onePass(tab *answerTable) error {
	goal := tab.goal
	for _, c := range tb.prog.Clauses {
		if c.Head.Pred != goal.Pred || c.Head.Arity() != goal.Arity() {
			continue
		}
		rc := c.Rename(&tb.renamer)
		s := term.Subst{}
		if !term.UnifyAll(goal.Args, rc.Head.Args, s) {
			continue
		}
		err := tb.solveBody(OrderBody(rc.Body), s, func(s2 term.Subst) error {
			ans := rc.Head.Apply(s2)
			if !ans.IsGround() {
				return fmt.Errorf("datalog: tabled answer %s is not ground (unsafe clause %s)", ans, c)
			}
			k := ans.Key()
			if !tab.seen[k] {
				tab.seen[k] = true
				tab.answers = append(tab.answers, ans)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (tb *Tabled) totalAnswers() int {
	n := 0
	for _, t := range tb.tables {
		n += len(t.answers)
	}
	return n
}

// solveBody enumerates substitutions satisfying the body left to right,
// resolving positive non-builtin literals through tables.
func (tb *Tabled) solveBody(body []Literal, s term.Subst, emit func(term.Subst) error) error {
	if err := tb.gov.Step(); err != nil {
		return err
	}
	if len(body) == 0 {
		return emit(s)
	}
	l, rest := body[0], body[1:]
	switch {
	case l.Atom.Pred == BuiltinEq:
		s2 := s.Clone()
		if term.Unify(l.Atom.Args[0], l.Atom.Args[1], s2) {
			return tb.solveBody(rest, s2, emit)
		}
		return nil
	case l.Atom.Pred == BuiltinNeq:
		inst := l.Atom.Apply(s)
		if !inst.IsGround() {
			return fmt.Errorf("datalog: tabled '!=' on non-ground goal %s", inst)
		}
		if !inst.Args[0].Equal(inst.Args[1]) {
			return tb.solveBody(rest, s, emit)
		}
		return nil
	case l.Negated:
		inst := l.Atom.Apply(s)
		if !inst.IsGround() {
			return fmt.Errorf("datalog: tabled floundering on %s", l)
		}
		if tb.model == nil {
			ctx := tb.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			e := Evaluator{Limits: tb.Limits}
			m, err := e.EvalContext(ctx, tb.prog, nil)
			if err != nil {
				return err
			}
			tb.model = m
		}
		if tb.model.Contains(inst) {
			return nil
		}
		return tb.solveBody(rest, s, emit)
	default:
		call := l.Atom.Apply(s)
		tab := tb.ensureTable(call)
		// Consume the table's answers as they stand; outer fixpoint
		// rounds pick up late answers.
		for _, ans := range tab.answers {
			s2 := s.Clone()
			if term.UnifyAll(call.Args, ans.Args, s2) {
				if err := tb.solveBody(rest, s2, emit); err != nil {
					return err
				}
			}
		}
		return nil
	}
}
