package datalog

import (
	"fmt"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF       tokenKind = iota
	tokIdent               // lower-case identifier or quoted atom: parent, 'two words'
	tokVar                 // upper-case or _-prefixed identifier: X, _G1
	tokNumber              // digit run, kept as an opaque constant: 42
	tokLParen              // (
	tokRParen              // )
	tokComma               // ,
	tokDot                 // .
	tokColonDash           // :-
	tokQueryDash           // ?-
	tokNot                 // the keyword "not" (recognised from tokIdent)
	tokEq                  // =
	tokNeq                 // !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColonDash:
		return "':-'"
	case tokQueryDash:
		return "'?-'"
	case tokNot:
		return "'not'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer tokenizes Datalog source. Comments run from '%' or "//" to newline.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return &SyntaxError{Lang: "datalog", Pos: Position{Line: line, Col: col}, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '%':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLower(r) }
func isVarStart(r rune) bool   { return unicode.IsUpper(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := lx.peek()
	switch {
	case r == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '.':
		lx.advance()
		return token{tokDot, ".", line, col}, nil
	case r == '=':
		lx.advance()
		return token{tokEq, "=", line, col}, nil
	case r == '!':
		lx.advance()
		if lx.peek() != '=' {
			return token{}, lx.errorf(line, col, "unexpected '!'; did you mean '!='?")
		}
		lx.advance()
		return token{tokNeq, "!=", line, col}, nil
	case r == ':':
		lx.advance()
		if lx.peek() != '-' {
			return token{}, lx.errorf(line, col, "unexpected ':'; did you mean ':-'?")
		}
		lx.advance()
		return token{tokColonDash, ":-", line, col}, nil
	case r == '?':
		lx.advance()
		if lx.peek() != '-' {
			return token{}, lx.errorf(line, col, "unexpected '?'; did you mean '?-'?")
		}
		lx.advance()
		return token{tokQueryDash, "?-", line, col}, nil
	case r == '\'':
		lx.advance()
		var text []rune
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(line, col, "unterminated quoted atom")
			}
			c := lx.advance()
			if c == '\'' {
				break
			}
			text = append(text, c)
		}
		return token{tokIdent, string(text), line, col}, nil
	case unicode.IsDigit(r):
		var text []rune
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			text = append(text, lx.advance())
		}
		return token{tokNumber, string(text), line, col}, nil
	case isIdentStart(r):
		var text []rune
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			text = append(text, lx.advance())
		}
		s := string(text)
		if s == "not" {
			return token{tokNot, s, line, col}, nil
		}
		return token{tokIdent, s, line, col}, nil
	case isVarStart(r):
		var text []rune
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			text = append(text, lx.advance())
		}
		return token{tokVar, string(text), line, col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", r)
}
