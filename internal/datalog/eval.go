package datalog

import (
	"fmt"

	"repro/internal/term"
)

// Stats reports work done by an evaluation, for the benchmark harness and
// the naive-vs-semi-naive ablation.
type Stats struct {
	Iterations  int // fixpoint rounds summed over strata
	RuleFirings int // rule body evaluations attempted
	Derivations int // head instances produced (including duplicates)
	Facts       int // facts in the final model
}

// Evaluator computes the minimal model of a stratified Datalog program by
// bottom-up fixpoint iteration. The zero value evaluates semi-naively with
// indexing; fields may be toggled for ablation.
type Evaluator struct {
	Naive   bool // disable the semi-naive delta optimization
	NoIndex bool // disable argument indexing in the derived store
	// Parallel fires the (rule × delta) jobs of each round concurrently;
	// derivations become visible at round boundaries, so the model is
	// unchanged. Workers bounds the goroutines (0 = NumCPU). Parallel is
	// ignored when Naive is set.
	Parallel bool
	Workers  int
	Stats    Stats
}

// Eval computes the minimal model of program ∪ edb. edb may be nil. The
// returned store contains the EDB facts plus everything derivable. Eval
// fails if the program is unsafe or not stratifiable.
func (e *Evaluator) Eval(p *Program, edb *Store) (*Store, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	strata, err := Strata(p)
	if err != nil {
		return nil, err
	}
	var full *Store
	if e.NoIndex {
		full = NewStoreNoIndex()
	} else {
		full = NewStore()
	}
	if edb != nil {
		for _, pred := range edb.Preds() {
			for _, f := range edb.Facts(pred) {
				full.Insert(f)
			}
		}
	}
	for _, clauses := range strata {
		var err error
		if e.Parallel && !e.Naive {
			err = e.evalStratumParallel(clauses, full)
		} else {
			err = e.evalStratum(clauses, full)
		}
		if err != nil {
			return nil, err
		}
	}
	e.Stats.Facts = full.Len()
	return full, nil
}

// Eval is a convenience wrapper: semi-naive evaluation with default options.
func Eval(p *Program, edb *Store) (*Store, error) {
	var e Evaluator
	return e.Eval(p, edb)
}

// evalStratum iterates the clauses of one stratum to fixpoint against full,
// which already contains all lower strata.
func (e *Evaluator) evalStratum(clauses []Clause, full *Store) error {
	// Facts fire once.
	var rules []Clause
	for _, c := range clauses {
		if c.IsFact() {
			if !c.Head.IsGround() {
				return fmt.Errorf("datalog: non-ground fact %s", c.Head)
			}
			full.Insert(c.Head)
		} else {
			rules = append(rules, c)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	// Which predicates are defined by rules in this stratum? Those are the
	// ones whose growth drives re-evaluation.
	idb := map[string]bool{}
	for _, c := range rules {
		idb[c.Head.Pred] = true
	}

	if e.Naive {
		for {
			e.Stats.Iterations++
			changed := false
			for _, c := range rules {
				e.Stats.RuleFirings++
				err := e.solveBody(c, full, nil, -1, func(head Atom) error {
					e.Stats.Derivations++
					if full.Insert(head) {
						changed = true
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
			if !changed {
				return nil
			}
		}
	}

	// Semi-naive: first round evaluates every rule fully; subsequent rounds
	// require one body literal to match the previous round's delta.
	delta := NewStore()
	e.Stats.Iterations++
	for _, c := range rules {
		e.Stats.RuleFirings++
		err := e.solveBody(c, full, nil, -1, func(head Atom) error {
			e.Stats.Derivations++
			if full.Insert(head) {
				delta.Insert(head)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for delta.Len() > 0 {
		e.Stats.Iterations++
		next := NewStore()
		for _, c := range rules {
			for i, l := range c.Body {
				if l.Negated || l.Atom.IsBuiltin() || !idb[l.Atom.Pred] {
					continue
				}
				if len(delta.Facts(l.Atom.Pred)) == 0 {
					continue
				}
				e.Stats.RuleFirings++
				err := e.solveBody(c, full, delta, i, func(head Atom) error {
					e.Stats.Derivations++
					if full.Insert(head) {
						next.Insert(head)
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
		}
		delta = next
	}
	return nil
}

// solveBody enumerates all substitutions satisfying c's body against full
// (literal deltaIdx, if ≥ 0, matched against delta instead) and calls emit
// with each resulting ground head. Literals are consumed in a "first ready"
// order: built-in '!=' and negated literals wait until ground, which safety
// guarantees will happen.
func (e *Evaluator) solveBody(c Clause, full, delta *Store, deltaIdx int, emit func(Atom) error) error {
	remaining := make([]int, len(c.Body))
	for i := range remaining {
		remaining[i] = i
	}
	var rec func(rem []int, s term.Subst) error
	rec = func(rem []int, s term.Subst) error {
		if len(rem) == 0 {
			head := c.Head.Apply(s)
			if !head.IsGround() {
				return fmt.Errorf("datalog: derived non-ground head %s from %s", head, c)
			}
			return emit(head)
		}
		// Pick the first ready literal.
		pick := -1
		for pi, bi := range rem {
			l := c.Body[bi]
			switch {
			case !l.Negated && !l.Atom.IsBuiltin():
				pick = pi
			case l.Atom.Pred == BuiltinEq && !l.Negated:
				pick = pi
			default: // '!=' or negation: ready only when ground
				if l.Apply(s).Atom.IsGround() {
					pick = pi
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("datalog: floundering clause %s (validate should have caught this)", c)
		}
		bi := rem[pick]
		rest := make([]int, 0, len(rem)-1)
		rest = append(rest, rem[:pick]...)
		rest = append(rest, rem[pick+1:]...)
		l := c.Body[bi]
		switch {
		case l.Atom.Pred == BuiltinEq:
			s2 := s.Clone()
			if term.Unify(l.Atom.Args[0], l.Atom.Args[1], s2) {
				return rec(rest, s2)
			}
			return nil
		case l.Atom.Pred == BuiltinNeq:
			g := l.Atom.Apply(s)
			if !g.Args[0].Equal(g.Args[1]) {
				return rec(rest, s)
			}
			return nil
		case l.Negated:
			g := l.Atom.Apply(s)
			if !full.Contains(g) {
				return rec(rest, s)
			}
			return nil
		default:
			src := full
			if bi == deltaIdx {
				src = delta
			}
			var innerErr error
			src.Match(l.Atom, s, func(s2 term.Subst) bool {
				if err := rec(rest, s2); err != nil {
					innerErr = err
					return false
				}
				return true
			})
			return innerErr
		}
	}
	return rec(remaining, term.Subst{})
}

// Query evaluates the program and returns every substitution (restricted to
// the goal's variables) making goal true in the minimal model, in a
// deterministic order.
func Query(p *Program, edb *Store, goal Atom) ([]term.Subst, error) {
	model, err := Eval(p, edb)
	if err != nil {
		return nil, err
	}
	return QueryStore(model, goal), nil
}

// QueryStore matches goal against an already-computed model.
func QueryStore(model *Store, goal Atom) []term.Subst {
	goalVars := map[string]bool{}
	for _, v := range goal.Vars(nil) {
		goalVars[v] = true
	}
	var out []term.Subst
	seen := map[string]bool{}
	model.Match(goal, term.Subst{}, func(s term.Subst) bool {
		restricted := term.Subst{}
		for v := range goalVars {
			restricted[v] = s.Apply(term.Var(v))
		}
		k := restricted.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, restricted)
		}
		return true
	})
	return out
}
