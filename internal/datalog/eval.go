package datalog

import (
	"context"
	"fmt"

	"repro/internal/resource"
	"repro/internal/term"
)

// Stats reports work done by an evaluation, for the benchmark harness and
// the naive-vs-semi-naive ablation.
type Stats struct {
	Iterations  int // fixpoint rounds summed over strata
	RuleFirings int // rule body evaluations attempted
	Derivations int // head instances produced (including duplicates)
	Facts       int // facts in the final model

	// Partial-progress report when evaluation is governed (EvalContext or a
	// non-zero Limits): how far it got and whether it was cut short.
	StrataCompleted int  // fully evaluated strata
	Truncated       bool // a limit, cancellation, or fault stopped evaluation early
	Resource        resource.Stats
}

// Evaluator computes the minimal model of a stratified Datalog program by
// bottom-up fixpoint iteration. The zero value evaluates semi-naively with
// indexing; fields may be toggled for ablation.
type Evaluator struct {
	Naive   bool // disable the semi-naive delta optimization
	NoIndex bool // disable argument indexing in the derived store
	// Parallel fires the (rule × delta) jobs of each round concurrently;
	// derivations become visible at round boundaries, so the model is
	// unchanged. Workers bounds the goroutines (0 = NumCPU). Parallel is
	// ignored when Naive is set.
	Parallel bool
	Workers  int
	// Limits bounds the evaluation (facts, steps, memory, probes). The zero
	// value is unlimited. Wall-clock deadlines come from the context passed
	// to EvalContext.
	Limits resource.Limits
	Stats  Stats

	gov *resource.Governor
}

// approxAtomBytes estimates the bytes retained by one stored fact — the
// structural text size plus map/slice bookkeeping — for the MaxMemory budget.
func approxAtomBytes(a Atom) int64 {
	n := len(a.Pred) + 48 // relation bookkeeping: key map entry, facts slot
	for _, t := range a.Args {
		n += len(t.Key()) + 16
	}
	return int64(n)
}

// insert adds a derived fact to dst, charging the governor for new facts.
func (e *Evaluator) insert(dst *Store, a Atom) (bool, error) {
	added, err := dst.Insert(a)
	if err != nil {
		return false, err
	}
	if added {
		if err := e.gov.Insert(approxAtomBytes(a)); err != nil {
			return true, err
		}
	}
	return added, nil
}

// Eval computes the minimal model of program ∪ edb. edb may be nil. The
// returned store contains the EDB facts plus everything derivable. Eval
// fails if the program is unsafe or not stratifiable.
func (e *Evaluator) Eval(p *Program, edb *Store) (*Store, error) {
	return e.EvalContext(context.Background(), p, edb)
}

// EvalContext is Eval bounded by ctx and e.Limits. On a resource-limit stop
// (resource.IsLimit(err)) it returns the partial model computed so far
// alongside the error; e.Stats reports how far it got.
func (e *Evaluator) EvalContext(ctx context.Context, p *Program, edb *Store) (*Store, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	strata, err := Strata(p)
	if err != nil {
		return nil, err
	}
	e.gov = resource.New(ctx, e.Limits)
	var full *Store
	if e.NoIndex {
		full = NewStoreNoIndex()
	} else {
		full = NewStore()
	}
	if edb != nil {
		// The fault hook rides along so injected store failures reach the
		// derived store, not just the caller's EDB.
		full.InsertFault = edb.InsertFault
		for _, pred := range edb.Preds() {
			for _, f := range edb.Facts(pred) {
				if _, err := e.insert(full, f); err != nil {
					return e.finish(full, err)
				}
			}
		}
	}
	for _, clauses := range strata {
		var err error
		if e.Parallel && !e.Naive {
			err = e.evalStratumParallel(clauses, full)
		} else {
			err = e.evalStratum(clauses, full)
		}
		if err != nil {
			return e.finish(full, err)
		}
		e.Stats.StrataCompleted++
		if err := e.gov.StratumDone(); err != nil {
			return e.finish(full, err)
		}
	}
	return e.finish(full, nil)
}

// finish records final stats and shapes the return: limit errors keep the
// partial store so callers see how far evaluation got.
func (e *Evaluator) finish(full *Store, err error) (*Store, error) {
	e.Stats.Facts = full.Len()
	e.Stats.Resource = e.gov.Snapshot()
	if err != nil {
		e.Stats.Truncated = true
		e.Stats.Resource.Truncated = true
		if resource.IsLimit(err) {
			return full, err
		}
		return nil, err
	}
	return full, nil
}

// Eval is a convenience wrapper: semi-naive evaluation with default options.
func Eval(p *Program, edb *Store) (*Store, error) {
	var e Evaluator
	return e.Eval(p, edb)
}

// EvalLimited is Eval bounded by ctx and limits; it returns the (possibly
// partial) model, the evaluation stats, and the error, if any.
func EvalLimited(ctx context.Context, p *Program, edb *Store, limits resource.Limits) (*Store, Stats, error) {
	e := Evaluator{Limits: limits}
	model, err := e.EvalContext(ctx, p, edb)
	return model, e.Stats, err
}

// evalStratum iterates the clauses of one stratum to fixpoint against full,
// which already contains all lower strata.
func (e *Evaluator) evalStratum(clauses []Clause, full *Store) error {
	// Facts fire once.
	var rules []Clause
	for _, c := range clauses {
		if c.IsFact() {
			if !c.Head.IsGround() {
				return fmt.Errorf("datalog: non-ground fact %s", c.Head)
			}
			if _, err := e.insert(full, c.Head); err != nil {
				return err
			}
		} else {
			rules = append(rules, c)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	// Which predicates are defined by rules in this stratum? Those are the
	// ones whose growth drives re-evaluation.
	idb := map[string]bool{}
	for _, c := range rules {
		idb[c.Head.Pred] = true
	}

	if e.Naive {
		for {
			e.Stats.Iterations++
			if err := e.gov.Check(); err != nil {
				return err
			}
			changed := false
			for _, c := range rules {
				e.Stats.RuleFirings++
				err := e.solveBody(c, full, nil, -1, func(head Atom) error {
					e.Stats.Derivations++
					added, err := e.insert(full, head)
					if err != nil {
						return err
					}
					if added {
						changed = true
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
			if !changed {
				return nil
			}
		}
	}

	// Semi-naive: first round evaluates every rule fully; subsequent rounds
	// require one body literal to match the previous round's delta.
	delta := NewStore()
	e.Stats.Iterations++
	for _, c := range rules {
		e.Stats.RuleFirings++
		err := e.solveBody(c, full, nil, -1, func(head Atom) error {
			e.Stats.Derivations++
			added, err := e.insert(full, head)
			if err != nil {
				return err
			}
			if added {
				delta.Insert(head) //nolint:errcheck // ground: just inserted into full
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for delta.Len() > 0 {
		e.Stats.Iterations++
		if err := e.gov.Check(); err != nil {
			return err
		}
		next := NewStore()
		for _, c := range rules {
			for i, l := range c.Body {
				if l.Negated || l.Atom.IsBuiltin() || !idb[l.Atom.Pred] {
					continue
				}
				if len(delta.Facts(l.Atom.Pred)) == 0 {
					continue
				}
				e.Stats.RuleFirings++
				err := e.solveBody(c, full, delta, i, func(head Atom) error {
					e.Stats.Derivations++
					added, err := e.insert(full, head)
					if err != nil {
						return err
					}
					if added {
						next.Insert(head) //nolint:errcheck // ground: just inserted into full
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
		}
		delta = next
	}
	return nil
}

// solveBody enumerates all substitutions satisfying c's body against full
// (literal deltaIdx, if ≥ 0, matched against delta instead) and calls emit
// with each resulting ground head. Literals are consumed in a "first ready"
// order: built-in '!=' and negated literals wait until ground, which safety
// guarantees will happen.
func (e *Evaluator) solveBody(c Clause, full, delta *Store, deltaIdx int, emit func(Atom) error) error {
	remaining := make([]int, len(c.Body))
	for i := range remaining {
		remaining[i] = i
	}
	var rec func(rem []int, s term.Subst) error
	rec = func(rem []int, s term.Subst) error {
		if err := e.gov.Step(); err != nil {
			return err
		}
		if len(rem) == 0 {
			head := c.Head.Apply(s)
			if !head.IsGround() {
				return fmt.Errorf("datalog: derived non-ground head %s from %s", head, c)
			}
			return emit(head)
		}
		// Pick the first ready literal.
		pick := -1
		for pi, bi := range rem {
			l := c.Body[bi]
			switch {
			case !l.Negated && !l.Atom.IsBuiltin():
				pick = pi
			case l.Atom.Pred == BuiltinEq && !l.Negated:
				pick = pi
			default: // '!=' or negation: ready only when ground
				if l.Apply(s).Atom.IsGround() {
					pick = pi
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("datalog: floundering clause %s (validate should have caught this)", c)
		}
		bi := rem[pick]
		rest := make([]int, 0, len(rem)-1)
		rest = append(rest, rem[:pick]...)
		rest = append(rest, rem[pick+1:]...)
		l := c.Body[bi]
		switch {
		case l.Atom.Pred == BuiltinEq:
			s2 := s.Clone()
			if term.Unify(l.Atom.Args[0], l.Atom.Args[1], s2) {
				return rec(rest, s2)
			}
			return nil
		case l.Atom.Pred == BuiltinNeq:
			g := l.Atom.Apply(s)
			if !g.Args[0].Equal(g.Args[1]) {
				return rec(rest, s)
			}
			return nil
		case l.Negated:
			g := l.Atom.Apply(s)
			if !full.Contains(g) {
				return rec(rest, s)
			}
			return nil
		default:
			src := full
			if bi == deltaIdx {
				src = delta
			}
			var innerErr error
			src.Match(l.Atom, s, func(s2 term.Subst) bool {
				if err := rec(rest, s2); err != nil {
					innerErr = err
					return false
				}
				return true
			})
			return innerErr
		}
	}
	return rec(remaining, term.Subst{})
}

// Query evaluates the program and returns every substitution (restricted to
// the goal's variables) making goal true in the minimal model, in a
// deterministic order.
func Query(p *Program, edb *Store, goal Atom) ([]term.Subst, error) {
	model, err := Eval(p, edb)
	if err != nil {
		return nil, err
	}
	return QueryStore(model, goal), nil
}

// QueryLimited is Query bounded by ctx and limits. On a resource-limit stop
// it returns the answers found in the partial model alongside the error.
func QueryLimited(ctx context.Context, p *Program, edb *Store, goal Atom, limits resource.Limits) ([]term.Subst, Stats, error) {
	model, stats, err := EvalLimited(ctx, p, edb, limits)
	if err != nil && !resource.IsLimit(err) {
		return nil, stats, err
	}
	if model == nil {
		return nil, stats, err
	}
	return QueryStore(model, goal), stats, err
}

// QueryStore matches goal against an already-computed model. It performs
// no evaluation: the work is a bounded scan of the store.
//
//vet:allow govcontext -- bounded lookup over a materialized model
func QueryStore(model *Store, goal Atom) []term.Subst {
	goalVars := map[string]bool{}
	for _, v := range goal.Vars(nil) {
		goalVars[v] = true
	}
	var out []term.Subst
	seen := map[string]bool{}
	model.Match(goal, term.Subst{}, func(s term.Subst) bool {
		restricted := term.Subst{}
		for v := range goalVars {
			restricted[v] = s.Apply(term.Var(v))
		}
		k := restricted.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, restricted)
		}
		return true
	})
	return out
}
