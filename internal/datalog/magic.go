package datalog

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/resource"
	"repro/internal/term"
)

// MagicSet rewrites a program for a specific query goal using the
// generalized magic-sets transformation, the optimization CORAL is built
// around: bottom-up evaluation of the rewritten program derives only the
// facts relevant to the query's bound arguments, combining the goal
// direction of top-down resolution with the termination of bottom-up
// fixpoints.
//
// The transformation:
//
//  1. adorns IDB predicates with a 'b'/'f' pattern per argument, starting
//     from the query's constants and propagating left-to-right through
//     rule bodies (the standard sideways information passing strategy);
//  2. introduces magic predicates carrying the bound arguments, with one
//     magic rule per IDB body occurrence;
//  3. seeds the magic predicate of the query with its bound arguments.
//
// It returns the rewritten program and the adorned query goal to evaluate
// against it. Negation is supported only over EDB predicates (facts-only):
// magic rewriting under negated IDB literals would change stratification,
// so such programs are rejected — callers fall back to plain evaluation.
func MagicSet(p *Program, query Atom) (*Program, Atom, error) {
	if query.IsBuiltin() {
		return nil, Atom{}, fmt.Errorf("datalog: cannot magic-rewrite a built-in query")
	}
	// IDB = predicates defined by at least one proper rule.
	idb := map[string]bool{}
	for _, c := range p.Clauses {
		if !c.IsFact() {
			idb[c.Head.Pred] = true
		}
	}
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.Negated && idb[l.Atom.Pred] {
				return nil, Atom{}, fmt.Errorf("datalog: magic sets does not support negation over IDB predicate %s", l.Atom.Pred)
			}
		}
	}
	rulesFor := map[string][]Clause{}
	out := &Program{}
	for _, c := range p.Clauses {
		if c.IsFact() || !idb[c.Head.Pred] {
			if idb[c.Head.Pred] {
				// An IDB predicate can also have facts; they are emitted
				// per adornment below.
				rulesFor[c.Head.Pred] = append(rulesFor[c.Head.Pred], c)
				continue
			}
			out.Add(c) // EDB clause: carried over verbatim
			continue
		}
		rulesFor[c.Head.Pred] = append(rulesFor[c.Head.Pred], c)
	}

	if !idb[query.Pred] {
		// Querying an EDB predicate: nothing to specialize.
		return p, query, nil
	}

	queryAd := AdornmentOf(query, map[string]bool{})
	type job struct {
		pred, ad string
	}
	done := map[job]bool{}
	work := []job{{query.Pred, queryAd}}
	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		if done[j] {
			continue
		}
		done[j] = true
		for _, c := range rulesFor[j.pred] {
			if len(c.Head.Args) != len(j.ad) {
				continue
			}
			if c.IsFact() {
				// Facts of an IDB predicate become guarded rules so only
				// magic-relevant instances survive.
				head := adornAtom(c.Head, j.ad)
				body := []Literal{Pos(magicAtom(c.Head, j.ad))}
				out.Add(Clause{Head: head, Body: body})
				continue
			}
			adorned, magicRules, calls := adornRule(c, j.ad, idb)
			out.Add(adorned)
			out.Add(magicRules...)
			for _, call := range calls {
				if !done[call] {
					work = append(work, call)
				}
			}
		}
	}
	// Seed: the magic fact for the query's bound arguments.
	seed := magicAtom(query, queryAd)
	if !seed.IsGround() {
		return nil, Atom{}, fmt.Errorf("datalog: internal: magic seed %s not ground", seed)
	}
	out.Add(Fact(seed))
	return out, adornAtom(query, queryAd), nil
}

// AdornmentOf computes the b/f pattern of an atom given the currently
// bound variables: an argument is bound when it is ground or all its
// variables are bound. It is the single adornment definition shared by
// the magic-sets rewrite and the whole-program adornment analysis
// (internal/analysis); both must agree on what "bound" means or plan
// selection would diverge from rewriting.
func AdornmentOf(a Atom, bound map[string]bool) string {
	var b strings.Builder
	for _, t := range a.Args {
		vars := t.Vars(nil)
		isBound := true
		for _, v := range vars {
			if !bound[v] {
				isBound = false
				break
			}
		}
		if isBound {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

func adornedName(pred, ad string) string { return pred + "__" + ad }

func magicName(pred, ad string) string { return "m__" + pred + "__" + ad }

// adornAtom renames the atom to its adorned variant.
func adornAtom(a Atom, ad string) Atom {
	return Atom{Pred: adornedName(a.Pred, ad), Args: a.Args}
}

// magicAtom builds the magic atom carrying only the bound arguments.
func magicAtom(a Atom, ad string) Atom {
	var args []term.Term
	for i, t := range a.Args {
		if ad[i] == 'b' {
			args = append(args, t)
		}
	}
	return Atom{Pred: magicName(a.Pred, ad), Args: args}
}

// adornRule rewrites one rule for a head adornment: the adorned rule gets
// the magic guard plus the (recursively adorned) body, and each IDB body
// occurrence yields a magic rule passing the bindings sideways.
func adornRule(c Clause, headAd string, idb map[string]bool) (Clause, []Clause, []struct{ pred, ad string }) {
	bound := map[string]bool{}
	for i, t := range c.Head.Args {
		if headAd[i] == 'b' {
			for _, v := range t.Vars(nil) {
				bound[v] = true
			}
		}
	}
	guard := Pos(magicAtom(c.Head, headAd))
	newBody := []Literal{guard}
	var magicRules []Clause
	var calls []struct{ pred, ad string }
	// prefix holds the literals evaluated so far (for magic rule bodies).
	// The body is reordered (negation and '!=' last) so every prefix cut at
	// an IDB call keeps the positive literals that range-restrict it.
	prefix := []Literal{guard}
	for _, l := range OrderBody(c.Body) {
		if !l.Negated && idb[l.Atom.Pred] && !l.Atom.IsBuiltin() {
			ad := AdornmentOf(l.Atom, bound)
			// Magic rule: the bindings that reach this call.
			magicRules = append(magicRules, Clause{
				Head: magicAtom(l.Atom, ad),
				Body: append([]Literal(nil), prefix...),
			})
			calls = append(calls, struct{ pred, ad string }{l.Atom.Pred, ad})
			adorned := Literal{Atom: adornAtom(l.Atom, ad)}
			newBody = append(newBody, adorned)
			prefix = append(prefix, adorned)
		} else {
			newBody = append(newBody, l)
			prefix = append(prefix, l)
		}
		// Sideways information passing: positive literals and equalities
		// bind their variables for the literals to their right.
		if !l.Negated && l.Atom.Pred != BuiltinNeq {
			for _, v := range l.Atom.Vars(nil) {
				bound[v] = true
			}
		}
	}
	adornedHead := adornAtom(c.Head, headAd)
	return Clause{Head: adornedHead, Body: newBody}, magicRules, calls
}

// QueryMagic answers a goal with the magic-sets rewriting when applicable,
// falling back to plain evaluation otherwise. Answers are identical to
// Query's; only the work differs.
func QueryMagic(p *Program, edb *Store, goal Atom) ([]term.Subst, error) {
	rewritten, adornedGoal, err := MagicSet(p, goal)
	if err != nil {
		return Query(p, edb, goal)
	}
	model, err := Eval(rewritten, edb)
	if err != nil {
		return nil, err
	}
	return QueryStore(model, adornedGoal), nil
}

// QueryMagicLimited is QueryMagic bounded by ctx and limits. On a
// resource-limit stop it returns the answers visible in the partial model
// alongside the error.
func QueryMagicLimited(ctx context.Context, p *Program, edb *Store, goal Atom, limits resource.Limits) ([]term.Subst, Stats, error) {
	rewritten, adornedGoal, err := MagicSet(p, goal)
	if err != nil {
		return QueryLimited(ctx, p, edb, goal, limits)
	}
	model, stats, err := EvalLimited(ctx, rewritten, edb, limits)
	if err != nil {
		if model != nil && resource.IsLimit(err) {
			return QueryStore(model, adornedGoal), stats, err
		}
		return nil, stats, err
	}
	return QueryStore(model, adornedGoal), stats, nil
}
