package datalog

import "testing"

// TestAdornmentOf pins the public adornment helper shared by the
// magic-sets rewrite and internal/analysis: an argument is 'b' exactly
// when all its variables are bound (constants are trivially bound).
func TestAdornmentOf(t *testing.T) {
	cases := []struct {
		atom  string
		bound []string
		want  string
	}{
		{"p(a, b)", nil, "bb"},
		{"p(X, b)", nil, "fb"},
		{"p(X, b)", []string{"X"}, "bb"},
		{"p(X, Y, c)", []string{"Y"}, "fbb"},
		{"p(f(X, Y))", []string{"X"}, "f"},
		{"p(f(X, Y))", []string{"X", "Y"}, "b"},
		{"p()", nil, ""},
	}
	for _, tc := range cases {
		a, err := ParseAtom(tc.atom)
		if err != nil {
			t.Fatalf("ParseAtom(%q): %v", tc.atom, err)
		}
		bound := map[string]bool{}
		for _, v := range tc.bound {
			bound[v] = true
		}
		if got := AdornmentOf(a, bound); got != tc.want {
			t.Errorf("AdornmentOf(%s, %v) = %q, want %q", tc.atom, tc.bound, got, tc.want)
		}
	}
}

// TestOrderBodyDefersNegationAndNeq pins the SIPS order: positives keep
// source order, negated and '!=' literals stably move to the end.
func TestOrderBodyDefersNegationAndNeq(t *testing.T) {
	c, err := ParseClause("a(X) :- not b(X), c(X), X != d, e(X).")
	if err != nil {
		t.Fatal(err)
	}
	got := OrderBody(c.Body)
	want := []string{"c(X)", "e(X)", "not b(X)", "X != d"}
	if len(got) != len(want) {
		t.Fatalf("OrderBody returned %d literals, want %d", len(got), len(want))
	}
	for i, l := range got {
		if l.String() != want[i] {
			t.Errorf("OrderBody[%d] = %s, want %s", i, l.String(), want[i])
		}
	}
	// A body with nothing to defer is returned unchanged.
	c2, _ := ParseClause("a(X) :- b(X), c(X).")
	got2 := OrderBody(c2.Body)
	for i, l := range got2 {
		if l.String() != c2.Body[i].String() {
			t.Errorf("no-defer OrderBody[%d] = %s, want %s", i, l.String(), c2.Body[i].String())
		}
	}
}
