package datalog

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// TestParserPositions pins that line/col survive the lexer and parser into
// the AST: every parsed atom carries the 1-based position of its first
// token, through heads, body literals, infix built-ins and queries.
func TestParserPositions(t *testing.T) {
	src := "p(a).\n" +
		"q(X) :- p(X), not r(X), X != b.\n" +
		"?- q(Z).\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	at := func(pos Position, line, col int, what string) {
		t.Helper()
		if pos.Line != line || pos.Col != col {
			t.Errorf("%s at %s, want %d:%d", what, pos, line, col)
		}
	}
	at(p.Clauses[0].Head.Pos, 1, 1, "fact p(a)")
	at(p.Clauses[0].Pos(), 1, 1, "clause Pos()")
	at(p.Clauses[1].Head.Pos, 2, 1, "head q(X)")
	at(p.Clauses[1].Body[0].Atom.Pos, 2, 9, "body p(X)")
	at(p.Clauses[1].Body[1].Atom.Pos, 2, 19, "negated r(X)")
	at(p.Clauses[1].Body[2].Atom.Pos, 2, 25, "built-in X != b")
	at(p.Queries[0].Pos, 3, 4, "query q(Z)")
}

func TestPositionSurvivesApplyAndRename(t *testing.T) {
	c, err := ParseClause("q(X) :- p(X).")
	if err != nil {
		t.Fatal(err)
	}
	want := c.Head.Pos
	if !want.IsValid() {
		t.Fatal("parsed head must carry a position")
	}
	if got := c.Head.Apply(nil).Pos; got != want {
		t.Errorf("Apply dropped position: %s, want %s", got, want)
	}
	// Positions also survive clause renaming (used by the provers).
	var r term.Renamer
	if got := c.Rename(&r).Head.Pos; got != want {
		t.Errorf("Rename dropped position: %s, want %s", got, want)
	}
}

func TestPositionZeroForProgrammaticAtoms(t *testing.T) {
	a := NewAtom("p")
	if a.Pos.IsValid() {
		t.Fatal("programmatic atoms carry no position")
	}
	if got := a.Pos.String(); got != "-" {
		t.Fatalf("zero position renders %q, want \"-\"", got)
	}
}

// TestStratifyNamesCycle pins that the unstratifiability error spells out
// the actual offending dependency cycle, not just one predicate on it.
func TestStratifyNamesCycle(t *testing.T) {
	p, err := Parse(`
		move(a, b).
		win(X) :- move(X, Y), not lost(Y).
		lost(X) :- move(X, Y), win(Y).
		?- win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Stratify(p)
	if err == nil {
		t.Fatal("want unstratifiable")
	}
	msg := err.Error()
	// The cycle win -> not lost -> win (through the positive lost -> win
	// edge) must be spelled out with the negation marked.
	if !strings.Contains(msg, "win -> not lost -> win") {
		t.Fatalf("error %q does not spell out the cycle win -> not lost -> win", msg)
	}
}

func TestNegativeCycleNilWhenStratifiable(t *testing.T) {
	p, err := Parse(`
		node(a).
		haspar(b).
		root(X) :- node(X), not haspar(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if cycle := NegativeCycle(p); cycle != nil {
		t.Fatalf("stratifiable program reported cycle %v", cycle)
	}
	if _, err := Stratify(p); err != nil {
		t.Fatal(err)
	}
}

func TestFormatCycle(t *testing.T) {
	got := FormatCycle([]DepEdge{
		{From: "p", To: "q", Negative: true},
		{From: "q", To: "p"},
	})
	if got != "p -> not q -> p" {
		t.Fatalf("FormatCycle = %q", got)
	}
	if FormatCycle(nil) != "(unknown cycle)" {
		t.Fatal("empty cycle must render a placeholder")
	}
}
