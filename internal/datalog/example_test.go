package datalog_test

import (
	"fmt"

	"repro/internal/datalog"
)

// The classical ancestor program, evaluated bottom-up.
func ExampleEval() {
	prog, err := datalog.Parse(`
		parent(adam, cain). parent(cain, enoch).
		anc(X, Y) :- parent(X, Y).
		anc(X, Z) :- parent(X, Y), anc(Y, Z).
	`)
	if err != nil {
		panic(err)
	}
	model, err := datalog.Eval(prog, nil)
	if err != nil {
		panic(err)
	}
	goal, _ := datalog.ParseAtom("anc(adam, W)")
	for _, s := range datalog.QueryStore(model, goal) {
		fmt.Println(s)
	}
	// Unordered output:
	// {W/cain}
	// {W/enoch}
}

// Magic sets restrict evaluation to the query-relevant facts.
func ExampleMagicSet() {
	prog, _ := datalog.Parse(`
		edge(a, b). edge(b, c). edge(x, y).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`)
	goal, _ := datalog.ParseAtom("tc(a, W)")
	rewritten, adorned, err := datalog.MagicSet(prog, goal)
	if err != nil {
		panic(err)
	}
	model, _ := datalog.Eval(rewritten, nil)
	fmt.Println("answers:", len(datalog.QueryStore(model, adorned)))
	// Only the a/b/c fragment is derived (3 facts: ab, bc, ac); the
	// unreachable x->y edge never enters the tc computation, which plain
	// evaluation would materialize (4 facts).
	fmt.Println("tc__bf facts:", len(model.Facts("tc__bf")))
	// Output:
	// answers: 2
	// tc__bf facts: 3
}

// Tabling terminates on left recursion, where plain SLD loops.
func ExampleTabled() {
	prog, _ := datalog.Parse(`
		edge(a, b). edge(b, c).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
		tc(X, Y) :- edge(X, Y).
	`)
	goal, _ := datalog.ParseAtom("tc(a, W)")
	answers, err := datalog.NewTabled(prog).Prove(goal)
	if err != nil {
		panic(err)
	}
	for _, a := range answers {
		fmt.Println(a)
	}
	// Output:
	// {W/b}
	// {W/c}
}

// The SLD prover returns proof trees.
func ExampleSLD() {
	prog, _ := datalog.Parse(`
		parent(adam, cain).
		anc(X, Y) :- parent(X, Y).
	`)
	sld := datalog.NewSLD(prog)
	goal, _ := datalog.ParseAtom("anc(adam, W)")
	answers, err := sld.Prove(goal, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(answers[0].Bindings)
	fmt.Println("proof size:", answers[0].Proof.Size())
	// Output:
	// {W/cain}
	// proof size: 2
}
