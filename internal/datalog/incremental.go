package datalog

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/resource"
	"repro/internal/term"
)

// errStopEnum aborts a body enumeration early (derivability checks need only
// one firing); it never escapes this file.
var errStopEnum = errors.New("datalog: stop enumeration")

// This file implements counting-based incremental maintenance of a
// stratified minimal model: every materialized tuple carries its exact
// number of rule firings (derivation count) plus a count of base
// assertions, and ApplyDelta patches the fixpoint in place instead of
// re-running Eval.
//
// Pure counting deletion is unsound under recursion (a cyclic derivation
// can keep its own count alive after the external support is gone), so the
// engine splits by stratum shape:
//
//   - Non-recursive strata form a DAG of predicates. Deletions are handled
//     by exact re-counting in topological order: every tuple that may have
//     lost a firing has its derivation count recomputed against the live
//     model, and tuples whose count and base both reach zero are removed,
//     cascading downstream.
//   - Recursive strata use DRed (delete-and-rederive): tuples reachable
//     from a deletion are over-deleted transitively, then re-derived from
//     the surviving model before the net deletions are reported.
//
// Insertions run standard semi-naive delta propagation, including the
// firings a deletion below a stratum enables through a negated literal.
// After both phases, derivation counts of every touched tuple are
// recomputed exactly, so counts never drift even though the deletion
// phases over-approximate the affected set.

// IncStats counts the work done by delta application, cumulatively.
type IncStats struct {
	Deltas      int // ApplyDelta calls completed
	Suspects    int // tuples re-checked after a deletion
	OverDeleted int // tuples provisionally removed by DRed
	Rederived   int // over-deleted tuples that found alternative support
	Recounts    int // exact derivation-count recomputations
	Firings     int // rule-body enumerations performed
}

func (a IncStats) sub(b IncStats) IncStats {
	return IncStats{
		Deltas:      a.Deltas - b.Deltas,
		Suspects:    a.Suspects - b.Suspects,
		OverDeleted: a.OverDeleted - b.OverDeleted,
		Rederived:   a.Rederived - b.Rederived,
		Recounts:    a.Recounts - b.Recounts,
		Firings:     a.Firings - b.Firings,
	}
}

// TupleCount is the support bookkeeping for one materialized tuple.
type TupleCount struct {
	Base    int // base assertions (fact clauses / EDB inserts), a multiset count
	Derived int // rule firings currently deriving the tuple
}

type tupleInfo struct {
	atom    Atom
	base    int
	derived int
}

// litRef locates one body-literal occurrence of a predicate.
type litRef struct{ clause, lit int }

// PredDelta is the net membership change of one predicate across a delta.
type PredDelta struct {
	Added, Deleted []Atom
}

// DeltaResult reports what one ApplyDelta changed in the model.
type DeltaResult struct {
	// Changed maps each predicate whose tuple set changed to its net
	// additions and deletions, each sorted by atom key.
	Changed map[string]PredDelta
	Stats   IncStats // work done by this delta
}

// ChangedPreds returns the sorted predicates whose tuple sets changed.
func (r *DeltaResult) ChangedPreds() []string {
	out := make([]string, 0, len(r.Changed))
	for p := range r.Changed {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Incremental maintains the minimal model of a fixed rule set under fact
// deltas. Build one with NewIncremental; the rule set is immutable
// afterwards (rule changes require a rebuild). Not safe for concurrent use;
// Clone before mutating a shared engine.
type Incremental struct {
	rules       []Clause
	stratumOf   map[string]int // predicate -> stratum
	ruleStratum []int          // rule index -> stratum of its head predicate
	numStrata   int
	recursive   []bool              // stratum -> has a positive same-stratum cycle
	topo        [][]string          // stratum -> predicates in topological order (non-recursive strata only)
	headRules   map[string][]int    // head predicate -> rule indices
	posRefs     map[string][]litRef // predicate -> positive body occurrences
	negRefs     map[string][]litRef // predicate -> negated body occurrences

	model *Store
	info  map[string]*tupleInfo // atom key -> support counts

	// Limits bounds each ApplyDelta call (steps, facts, memory count the
	// delta's own work, not the standing model). The zero value is unlimited.
	Limits resource.Limits
	// Stats accumulates across the engine's lifetime.
	Stats IncStats

	broken bool
	gov    *resource.Governor
}

// NewIncremental evaluates program ∪ edb and returns an engine holding the
// model with exact derivation counts. edb may be nil.
func NewIncremental(p *Program, edb *Store) (*Incremental, error) {
	return NewIncrementalContext(context.Background(), p, edb, resource.Limits{})
}

// NewIncrementalContext is NewIncremental bounded by ctx and limits; the
// limits also bound every later ApplyDelta. Unlike EvalContext, a limit stop
// is a hard error: a partially counted model cannot be maintained.
func NewIncrementalContext(ctx context.Context, p *Program, edb *Store, limits resource.Limits) (*Incremental, error) {
	ev := Evaluator{Limits: limits}
	model, err := ev.EvalContext(ctx, p, edb)
	if err != nil {
		return nil, err
	}
	stratum, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	inc := &Incremental{
		stratumOf: stratum,
		headRules: map[string][]int{},
		posRefs:   map[string][]litRef{},
		negRefs:   map[string][]litRef{},
		model:     model,
		info:      map[string]*tupleInfo{},
		Limits:    limits,
	}
	for _, s := range stratum {
		if s+1 > inc.numStrata {
			inc.numStrata = s + 1
		}
	}
	if inc.numStrata == 0 {
		inc.numStrata = 1
	}
	for _, c := range p.Clauses {
		if c.IsFact() {
			inc.bump(c.Head, 1)
			continue
		}
		ri := len(inc.rules)
		inc.rules = append(inc.rules, c)
		inc.ruleStratum = append(inc.ruleStratum, stratum[c.Head.Pred])
		inc.headRules[c.Head.Pred] = append(inc.headRules[c.Head.Pred], ri)
		for li, l := range c.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			if l.Negated {
				inc.negRefs[l.Atom.Pred] = append(inc.negRefs[l.Atom.Pred], litRef{ri, li})
			} else {
				inc.posRefs[l.Atom.Pred] = append(inc.posRefs[l.Atom.Pred], litRef{ri, li})
			}
		}
	}
	if edb != nil {
		for _, pred := range edb.Preds() {
			for _, f := range edb.Facts(pred) {
				inc.bump(f, 1)
			}
		}
	}
	inc.analyzeStrata()
	// Exact initial derivation counts: one full enumeration of every rule
	// against the finished model. This is a single naive pass, paid once at
	// build time.
	inc.gov = resource.New(ctx, limits)
	live := storeView{live: model}
	for ri := range inc.rules {
		c := inc.rules[ri]
		inc.Stats.Firings++
		err := inc.solveFrom(c, -1, term.Subst{}, live, func(sub term.Subst) error {
			head := c.Head.Apply(sub)
			if !head.IsGround() {
				return fmt.Errorf("datalog: derived non-ground head %s from %s", head, c)
			}
			ti := inc.ensure(head)
			ti.derived++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return inc, nil
}

// bump adjusts the base count of a tuple that is already in the model.
func (inc *Incremental) bump(a Atom, by int) {
	ti := inc.ensure(a)
	ti.base += by
}

func (inc *Incremental) ensure(a Atom) *tupleInfo {
	k := a.Key()
	ti := inc.info[k]
	if ti == nil {
		ti = &tupleInfo{atom: a}
		inc.info[k] = ti
	}
	return ti
}

// analyzeStrata detects, per stratum, whether its predicates form a positive
// cycle (recursive → DRed deletion) and computes a topological order for the
// non-recursive ones (→ counting deletion).
func (inc *Incremental) analyzeStrata() {
	inc.recursive = make([]bool, inc.numStrata)
	inc.topo = make([][]string, inc.numStrata)
	// Same-stratum positive adjacency: head -> body predicates.
	type edge struct{ from, to string }
	adj := make([]map[string][]string, inc.numStrata)
	preds := make([]map[string]bool, inc.numStrata)
	for i := range adj {
		adj[i] = map[string][]string{}
		preds[i] = map[string]bool{}
	}
	for ri, c := range inc.rules {
		s := inc.ruleStratum[ri]
		preds[s][c.Head.Pred] = true
		seen := map[edge]bool{}
		for _, l := range c.Body {
			if l.Negated || l.Atom.IsBuiltin() {
				continue
			}
			if inc.stratumOf[l.Atom.Pred] != s {
				continue
			}
			preds[s][l.Atom.Pred] = true
			e := edge{c.Head.Pred, l.Atom.Pred}
			if !seen[e] {
				seen[e] = true
				adj[s][e.from] = append(adj[s][e.from], e.to)
			}
		}
	}
	for s := 0; s < inc.numStrata; s++ {
		// Kahn's algorithm over the reversed edges (dependencies first).
		// Leftover nodes mean a cycle → the stratum is recursive.
		indeg := map[string]int{}
		rev := map[string][]string{}
		var names []string
		for p := range preds[s] {
			names = append(names, p)
		}
		sort.Strings(names) // deterministic order
		for _, p := range names {
			indeg[p] = 0
		}
		for from, tos := range adj[s] {
			for _, to := range tos {
				rev[to] = append(rev[to], from)
				indeg[from]++
			}
		}
		var queue []string
		for _, p := range names {
			if indeg[p] == 0 {
				queue = append(queue, p)
			}
		}
		var order []string
		for len(queue) > 0 {
			sort.Strings(queue)
			p := queue[0]
			queue = queue[1:]
			order = append(order, p)
			for _, q := range rev[p] {
				indeg[q]--
				if indeg[q] == 0 {
					queue = append(queue, q)
				}
			}
		}
		if len(order) < len(names) {
			inc.recursive[s] = true
		} else {
			inc.topo[s] = order
		}
	}
}

// Model returns the live model. Callers must treat it as read-only; it is
// invalidated (and remains correct) across ApplyDelta calls.
func (inc *Incremental) Model() *Store { return inc.model }

// Count returns the support counts for a ground atom, and whether the atom
// is currently in the model.
func (inc *Incremental) Count(a Atom) (TupleCount, bool) {
	ti := inc.info[a.Key()]
	if ti == nil {
		return TupleCount{}, false
	}
	return TupleCount{Base: ti.base, Derived: ti.derived}, true
}

// Counts returns a snapshot of every tuple's support counts, keyed by atom
// key — the derivation-count sanity surface the differential harness checks
// against a freshly built engine.
func (inc *Incremental) Counts() map[string]TupleCount {
	out := make(map[string]TupleCount, len(inc.info))
	for k, ti := range inc.info {
		out[k] = TupleCount{Base: ti.base, Derived: ti.derived}
	}
	return out
}

// Clone returns an independent engine sharing only the immutable rule set.
func (inc *Incremental) Clone() *Incremental {
	c := *inc
	c.model = inc.model.Clone()
	c.info = make(map[string]*tupleInfo, len(inc.info))
	for k, ti := range inc.info {
		cp := *ti
		c.info[k] = &cp
	}
	c.gov = nil
	return &c
}

// storeView is what a body enumeration matches against. grave widens
// positive matches to tuples removed earlier in the same delta (an
// over-approximation of the pre-delta model); negSkip lists atom keys added
// by this delta, which negation checks must treat as absent when the
// enumeration asks about the pre-delta state.
type storeView struct {
	live    *Store
	grave   *Store
	negSkip map[string]bool
}

func (v storeView) contains(g Atom) bool {
	if v.negSkip != nil && v.negSkip[g.Key()] {
		return false
	}
	return v.live.Contains(g)
}

func (v storeView) match(a Atom, s term.Subst, fn func(term.Subst) bool) {
	stopped := false
	v.live.Match(a, s, func(s2 term.Subst) bool {
		if !fn(s2) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || v.grave == nil {
		return
	}
	v.grave.Match(a, s, fn)
}

// solveFrom enumerates all substitutions satisfying c's body against v,
// starting from s0 and skipping literal skip (already consumed by the
// caller). Literals are picked in the evaluator's "first ready" order.
func (inc *Incremental) solveFrom(c Clause, skip int, s0 term.Subst, v storeView, emit func(term.Subst) error) error {
	remaining := make([]int, 0, len(c.Body))
	for i := range c.Body {
		if i != skip {
			remaining = append(remaining, i)
		}
	}
	var rec func(rem []int, s term.Subst) error
	rec = func(rem []int, s term.Subst) error {
		if err := inc.gov.Step(); err != nil {
			return err
		}
		if len(rem) == 0 {
			return emit(s)
		}
		pick := -1
		for pi, bi := range rem {
			l := c.Body[bi]
			switch {
			case !l.Negated && !l.Atom.IsBuiltin():
				pick = pi
			case l.Atom.Pred == BuiltinEq && !l.Negated:
				pick = pi
			default: // '!=' or negation: ready only when ground
				if l.Apply(s).Atom.IsGround() {
					pick = pi
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("datalog: floundering clause %s (validate should have caught this)", c)
		}
		bi := rem[pick]
		rest := make([]int, 0, len(rem)-1)
		rest = append(rest, rem[:pick]...)
		rest = append(rest, rem[pick+1:]...)
		l := c.Body[bi]
		switch {
		case l.Atom.Pred == BuiltinEq:
			s2 := s.Clone()
			if term.Unify(l.Atom.Args[0], l.Atom.Args[1], s2) {
				return rec(rest, s2)
			}
			return nil
		case l.Atom.Pred == BuiltinNeq:
			g := l.Atom.Apply(s)
			if !g.Args[0].Equal(g.Args[1]) {
				return rec(rest, s)
			}
			return nil
		case l.Negated:
			if !v.contains(l.Atom.Apply(s)) {
				return rec(rest, s)
			}
			return nil
		default:
			var innerErr error
			v.match(l.Atom, s, func(s2 term.Subst) bool {
				if err := rec(rest, s2); err != nil {
					innerErr = err
					return false
				}
				return true
			})
			return innerErr
		}
	}
	return rec(remaining, s0)
}

// bindTo unifies pattern against a ground atom, returning the binding.
func bindTo(pattern, ground Atom) (term.Subst, bool) {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return nil, false
	}
	s := term.Subst{}
	if !term.UnifyAll(pattern.Args, ground.Args, s) {
		return nil, false
	}
	return s, true
}

// countFirings recomputes the exact number of firings deriving t against the
// live model. With earlyStop, it returns as soon as one firing is found.
func (inc *Incremental) countFirings(t Atom, earlyStop bool) (int, error) {
	live := storeView{live: inc.model}
	n := 0
	for _, ri := range inc.headRules[t.Pred] {
		c := inc.rules[ri]
		s0, ok := bindTo(c.Head, t)
		if !ok {
			continue
		}
		inc.Stats.Firings++
		err := inc.solveFrom(c, -1, s0, live, func(term.Subst) error {
			n++
			if earlyStop {
				return errStopEnum
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopEnum) {
			return n, err
		}
		if earlyStop && n > 0 {
			return n, nil
		}
	}
	return n, nil
}

// lostHeads enumerates heads of stratum-s rule firings that existed in the
// pre-delta over-approximation and involved d — at a positive literal when
// neg is false (d was deleted), or at a negated literal when neg is true (d
// was added, killing the firing).
func (inc *Incremental) lostHeads(s int, d Atom, neg bool, v storeView, yield func(Atom) error) error {
	refs := inc.posRefs[d.Pred]
	if neg {
		refs = inc.negRefs[d.Pred]
	}
	for _, rf := range refs {
		if inc.ruleStratum[rf.clause] != s {
			continue
		}
		c := inc.rules[rf.clause]
		s0, ok := bindTo(c.Body[rf.lit].Atom, d)
		if !ok {
			continue
		}
		inc.Stats.Firings++
		err := inc.solveFrom(c, rf.lit, s0, v, func(sub term.Subst) error {
			return yield(c.Head.Apply(sub))
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// deltaState is the bookkeeping shared by the phases of one ApplyDelta.
type deltaState struct {
	added   map[string]map[string]Atom // pred -> key -> atom, net additions
	deleted map[string]map[string]Atom // pred -> key -> atom, net deletions
	grave   *Store                     // every tuple removed at any point
	addKeys map[string]bool            // keys of net-added atoms (negation masking)
}

func (d *deltaState) noteAdd(a Atom, k string) {
	m := d.added[a.Pred]
	if m == nil {
		m = map[string]Atom{}
		d.added[a.Pred] = m
	}
	m[k] = a
	d.addKeys[k] = true
}

func (d *deltaState) noteDel(a Atom, k string) {
	m := d.deleted[a.Pred]
	if m == nil {
		m = map[string]Atom{}
		d.deleted[a.Pred] = m
	}
	m[k] = a
}

// cancelDel clears a recorded deletion whose tuple came back (net change
// zero), reporting whether there was one.
func (d *deltaState) cancelDel(pred, k string) bool {
	m := d.deleted[pred]
	if m == nil {
		return false
	}
	if _, ok := m[k]; !ok {
		return false
	}
	delete(m, k)
	if len(m) == 0 {
		delete(d.deleted, pred)
	}
	return true
}

// ApplyDelta patches the model in place: dels retracts base assertions
// (multiset semantics; retracting an absent assertion is a no-op), adds
// asserts new ones, and derived consequences are propagated stratum by
// stratum. It reports the net membership change per predicate. On error the
// engine is poisoned (the model may be half-patched) and every later call
// fails; keep a Clone if you need to survive failed deltas.
func (inc *Incremental) ApplyDelta(adds, dels []Atom) (*DeltaResult, error) {
	return inc.ApplyDeltaContext(context.Background(), adds, dels)
}

// ApplyDeltaContext is ApplyDelta bounded by ctx and inc.Limits.
func (inc *Incremental) ApplyDeltaContext(ctx context.Context, adds, dels []Atom) (*DeltaResult, error) {
	if inc.broken {
		return nil, fmt.Errorf("datalog: incremental engine poisoned by an earlier failed delta")
	}
	before := inc.Stats
	inc.gov = resource.New(ctx, inc.Limits)
	res, err := inc.applyDelta(adds, dels)
	if err != nil {
		inc.broken = true
		return nil, err
	}
	inc.Stats.Deltas++
	res.Stats = inc.Stats.sub(before)
	return res, nil
}

func (inc *Incremental) applyDelta(adds, dels []Atom) (*DeltaResult, error) {
	st := &deltaState{
		added:   map[string]map[string]Atom{},
		deleted: map[string]map[string]Atom{},
		grave:   NewStore(),
		addKeys: map[string]bool{},
	}
	// Phase 0: base-assertion bookkeeping. Deletions first, so a delta that
	// retracts and re-asserts the same atom nets out.
	for _, d := range dels {
		if !d.IsGround() || d.IsBuiltin() {
			return nil, fmt.Errorf("datalog: delta retract of invalid atom %s", d)
		}
		k := d.Key()
		ti := inc.info[k]
		if ti == nil || ti.base == 0 {
			continue // retracting an assertion that does not exist
		}
		ti.base--
		if ti.base == 0 && ti.derived == 0 {
			inc.removeTuple(d, k, st)
		}
	}
	for _, a := range adds {
		if !a.IsGround() || a.IsBuiltin() {
			return nil, fmt.Errorf("datalog: delta assert of invalid atom %s", a)
		}
		k := a.Key()
		ti := inc.ensure(a)
		ti.base++
		if ti.base == 1 && ti.derived == 0 {
			if err := inc.insertTuple(a, k, st); err != nil {
				return nil, err
			}
		}
	}
	for s := 0; s < inc.numStrata; s++ {
		affected := map[string]Atom{}
		var err error
		if inc.recursive[s] {
			err = inc.deleteDRed(s, st, affected)
		} else {
			err = inc.deleteCounting(s, st)
		}
		if err != nil {
			return nil, err
		}
		if err := inc.insertPhase(s, st, affected); err != nil {
			return nil, err
		}
		// Recount every touched tuple exactly against the now-final model of
		// this stratum. Lower predicates never change again, so the counts
		// are final.
		for _, t := range affected {
			if !inc.model.Contains(t) {
				continue
			}
			n, err := inc.countFirings(t, false)
			if err != nil {
				return nil, err
			}
			inc.Stats.Recounts++
			inc.ensure(t).derived = n
		}
	}
	res := &DeltaResult{Changed: map[string]PredDelta{}}
	for pred, m := range st.added {
		pd := res.Changed[pred]
		for _, a := range m {
			pd.Added = append(pd.Added, a)
		}
		sortAtoms(pd.Added)
		res.Changed[pred] = pd
	}
	for pred, m := range st.deleted {
		pd := res.Changed[pred]
		for _, a := range m {
			pd.Deleted = append(pd.Deleted, a)
		}
		sortAtoms(pd.Deleted)
		res.Changed[pred] = pd
	}
	return res, nil
}

func sortAtoms(as []Atom) {
	sort.Slice(as, func(i, j int) bool { return as[i].Key() < as[j].Key() })
}

// removeTuple takes a tuple out of the model and records the net deletion.
func (inc *Incremental) removeTuple(t Atom, k string, st *deltaState) {
	inc.model.Remove(t)
	st.grave.Insert(t) //nolint:errcheck // ground: was in the model
	if st.addKeys[k] {
		// Added earlier in this same delta: net change cancels.
		delete(st.addKeys, k)
		if m := st.added[t.Pred]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(st.added, t.Pred)
			}
		}
	} else {
		st.noteDel(t, k)
	}
	if ti := inc.info[k]; ti != nil && ti.base == 0 {
		delete(inc.info, k)
	}
}

// insertTuple puts a tuple into the model and records the net addition; a
// tuple returning after a same-delta deletion nets out instead.
func (inc *Incremental) insertTuple(t Atom, k string, st *deltaState) error {
	if _, err := inc.model.Insert(t); err != nil {
		return err
	}
	if err := inc.gov.Insert(approxAtomBytes(t)); err != nil {
		return err
	}
	if !st.cancelDel(t.Pred, k) {
		st.noteAdd(t, k)
	}
	return nil
}

// deleteCounting handles the deletion side of a non-recursive stratum by
// exact re-counting in topological predicate order. oldView widens matches
// to the graveyard so every pre-delta firing involving a deleted tuple is
// enumerated (an over-approximation; counts are recomputed exactly).
func (inc *Incremental) deleteCounting(s int, st *deltaState) error {
	suspects := map[string]map[string]Atom{} // pred -> key -> atom
	suspect := func(h Atom) error {
		inc.Stats.Suspects++
		m := suspects[h.Pred]
		if m == nil {
			m = map[string]Atom{}
			suspects[h.Pred] = m
		}
		m[h.Key()] = h
		return nil
	}
	oldView := storeView{live: inc.model, grave: st.grave, negSkip: st.addKeys}
	for _, m := range st.deleted {
		for _, d := range m {
			if err := inc.lostHeads(s, d, false, oldView, suspect); err != nil {
				return err
			}
		}
	}
	for _, m := range st.added {
		for _, a := range m {
			if err := inc.lostHeads(s, a, true, oldView, suspect); err != nil {
				return err
			}
		}
	}
	for _, pred := range inc.topo[s] {
		for {
			m := suspects[pred]
			if len(m) == 0 {
				break
			}
			delete(suspects, pred)
			// Sorted for deterministic enumeration order.
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				t := m[k]
				ti := inc.info[k]
				if ti == nil || !inc.model.Contains(t) {
					continue
				}
				n, err := inc.countFirings(t, false)
				if err != nil {
					return err
				}
				inc.Stats.Recounts++
				ti.derived = n
				if n == 0 && ti.base == 0 {
					inc.removeTuple(t, k, st)
					// Cascade: downstream suspects are topologically later
					// predicates of this stratum (or later strata, reached
					// through st.deleted when they run).
					if err := inc.lostHeads(s, t, false, oldView, suspect); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// deleteDRed handles the deletion side of a recursive stratum with
// delete-and-rederive: over-delete everything reachable from the deletions,
// then re-derive from the surviving model. Touched tuples are recorded in
// affected for the final exact recount.
func (inc *Incremental) deleteDRed(s int, st *deltaState, affected map[string]Atom) error {
	oldView := storeView{live: inc.model, grave: st.grave, negSkip: st.addKeys}
	overdeleted := map[string]Atom{}
	var queue []Atom
	for _, m := range st.deleted {
		for _, d := range m {
			queue = append(queue, d)
		}
	}
	onLost := func(h Atom) {
		k := h.Key()
		ti := inc.info[k]
		if ti == nil || !inc.model.Contains(h) {
			return
		}
		inc.Stats.Suspects++
		affected[k] = h
		if ti.base > 0 {
			return // base-supported: stays, count recomputed later
		}
		inc.Stats.OverDeleted++
		inc.removeTuple(h, k, st)
		overdeleted[k] = h
		queue = append(queue, h)
	}
	// Heads are buffered before processing: onLost mutates the model, and
	// removing tuples mid-enumeration would corrupt the store scan that
	// lostHeads is running.
	lost := func(d Atom, neg bool) error {
		var heads []Atom
		err := inc.lostHeads(s, d, neg, oldView, func(h Atom) error {
			heads = append(heads, h)
			return nil
		})
		if err != nil {
			return err
		}
		for _, h := range heads {
			onLost(h)
		}
		return nil
	}
	// Additions below the stratum kill firings through negated literals.
	for _, m := range st.added {
		for _, a := range m {
			if err := lost(a, true); err != nil {
				return err
			}
		}
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if err := lost(d, false); err != nil {
			return err
		}
	}
	// Re-derive: any over-deleted tuple still derivable from the surviving
	// model (including additions already in place) comes back.
	for changed := true; changed; {
		changed = false
		keys := make([]string, 0, len(overdeleted))
		for k := range overdeleted {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t := overdeleted[k]
			n, err := inc.countFirings(t, true)
			if err != nil {
				return err
			}
			if n > 0 {
				inc.Stats.Rederived++
				// insertTuple cancels the deletion recorded at over-delete
				// time, so the tuple's net change is zero.
				if err := inc.insertTuple(t, k, st); err != nil {
					return err
				}
				delete(overdeleted, k)
				affected[k] = t
				changed = true
			}
		}
	}
	return nil
}

// insertPhase runs semi-naive delta propagation for the additions visible to
// stratum s, including firings enabled by deletions below through negated
// literals. Every emitted head lands in affected for the final recount.
func (inc *Incremental) insertPhase(s int, st *deltaState, affected map[string]Atom) error {
	live := storeView{live: inc.model}
	var frontier []Atom
	for _, m := range st.added {
		for _, a := range m {
			frontier = append(frontier, a)
		}
	}
	emit := func(c Clause) func(term.Subst) error {
		return func(sub term.Subst) error {
			head := c.Head.Apply(sub)
			if !head.IsGround() {
				return fmt.Errorf("datalog: derived non-ground head %s from %s", head, c)
			}
			k := head.Key()
			affected[k] = head
			if inc.model.Contains(head) {
				return nil
			}
			inc.ensure(head) // derived count set by the recount
			if err := inc.insertTuple(head, k, st); err != nil {
				return err
			}
			frontier = append(frontier, head)
			return nil
		}
	}
	fire := func(d Atom, neg bool) error {
		refs := inc.posRefs[d.Pred]
		if neg {
			refs = inc.negRefs[d.Pred]
		}
		for _, rf := range refs {
			if inc.ruleStratum[rf.clause] != s {
				continue
			}
			c := inc.rules[rf.clause]
			s0, ok := bindTo(c.Body[rf.lit].Atom, d)
			if !ok {
				continue
			}
			inc.Stats.Firings++
			if err := inc.solveFrom(c, rf.lit, s0, live, emit(c)); err != nil {
				return err
			}
		}
		return nil
	}
	// Deletions below the stratum enable firings through negated literals;
	// they cannot cascade within the stratum (same-stratum negation is not
	// stratifiable), so one pass suffices.
	for _, m := range st.deleted {
		for _, d := range m {
			if err := fire(d, true); err != nil {
				return err
			}
		}
	}
	for len(frontier) > 0 {
		d := frontier[0]
		frontier = frontier[1:]
		if err := fire(d, false); err != nil {
			return err
		}
	}
	return nil
}
