package datalog

import (
	"fmt"
	"runtime"
	"sync"
)

// evalStratumParallel is the parallel variant of the semi-naive stratum
// loop: within each round, the (rule × delta-position) jobs fire
// concurrently against a read-only view of the store, each collecting its
// derivations locally; the derivations merge sequentially between rounds.
// Facts derived in a round become visible in the next round, so the result
// is the same minimal model (the fixpoint is reached, possibly in a
// different number of rounds).
func (e *Evaluator) evalStratumParallel(clauses []Clause, full *Store) error {
	var rules []Clause
	for _, c := range clauses {
		if c.IsFact() {
			if !c.Head.IsGround() {
				return fmt.Errorf("datalog: non-ground fact %s", c.Head)
			}
			if _, err := e.insert(full, c.Head); err != nil {
				return err
			}
		} else {
			rules = append(rules, c)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	idb := map[string]bool{}
	for _, c := range rules {
		idb[c.Head.Pred] = true
	}

	type job struct {
		clause   Clause
		deltaIdx int
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	runJobs := func(jobs []job, delta *Store) ([][]Atom, error) {
		results := make([][]Atom, len(jobs))
		errs := make([]error, len(jobs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, j job) {
				defer wg.Done()
				defer func() { <-sem }()
				var local []Atom
				errs[i] = e.solveBody(j.clause, full, delta, j.deltaIdx, func(head Atom) error {
					local = append(local, head)
					return nil
				})
				results[i] = local
			}(i, j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	// merge runs sequentially between rounds, so budget/probe accounting of
	// inserts is deterministic even though the jobs above run concurrently.
	merge := func(results [][]Atom, next *Store) error {
		for _, local := range results {
			for _, head := range local {
				e.Stats.Derivations++
				added, err := e.insert(full, head)
				if err != nil {
					return err
				}
				if added && next != nil {
					next.Insert(head) //nolint:errcheck // ground: just inserted into full
				}
			}
		}
		return nil
	}

	// First round: every rule in full.
	var firstJobs []job
	for _, c := range rules {
		firstJobs = append(firstJobs, job{c, -1})
	}
	e.Stats.Iterations++
	e.Stats.RuleFirings += len(firstJobs)
	delta := NewStore()
	results, err := runJobs(firstJobs, nil)
	if err != nil {
		return err
	}
	if err := merge(results, delta); err != nil {
		return err
	}

	for delta.Len() > 0 {
		e.Stats.Iterations++
		if err := e.gov.Check(); err != nil {
			return err
		}
		var jobs []job
		for _, c := range rules {
			for i, l := range c.Body {
				if l.Negated || l.Atom.IsBuiltin() || !idb[l.Atom.Pred] {
					continue
				}
				if len(delta.Facts(l.Atom.Pred)) == 0 {
					continue
				}
				jobs = append(jobs, job{c, i})
			}
		}
		e.Stats.RuleFirings += len(jobs)
		next := NewStore()
		results, err := runJobs(jobs, delta)
		if err != nil {
			return err
		}
		if err := merge(results, next); err != nil {
			return err
		}
		delta = next
	}
	return nil
}
