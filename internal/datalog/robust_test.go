package datalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parsers must never panic: random byte soup and random token shuffles
// either parse or return an error.
func TestQuickParseNeverPanics(t *testing.T) {
	tokens := []string{
		"p", "q(", ")", "(", ",", ".", ":-", "?-", "X", "a", "not ",
		"!=", "=", "'quoted'", "42", "null", "%c", "\n", " ",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < r.Intn(40); i++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
		}
		_, _ = Parse(b.String())
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRandomBytesNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Parse(string(data))
		_, _ = ParseAtom(string(data))
		_, _ = ParseClause(string(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
