package datalog

import (
	"fmt"

	"repro/internal/term"
)

// Parse parses Datalog source into a Program. Syntax:
//
//	parent(adam, abel).              % a fact
//	anc(X, Y) :- parent(X, Y).       % a rule
//	anc(X, Z) :- parent(X, Y), anc(Y, Z).
//	root(X) :- node(X), not haspar(X).
//	diff(X, Y) :- node(X), node(Y), X != Y.
//	?- anc(adam, X).                 % a query
//
// Identifiers starting lower-case (or quoted with single quotes, or numeric)
// are constants; upper-case or '_' start variables; "null" is the
// distinguished ⊥. Comments run from '%' or '//' to end of line.
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.bump(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokQueryDash {
			if err := p.bump(); err != nil {
				return nil, err
			}
			goal, err := p.atom()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
			prog.AddQuery(goal)
			continue
		}
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.Add(c)
	}
	return prog, nil
}

// ParseClause parses a single clause (fact or rule) terminated by '.'.
func ParseClause(src string) (Clause, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.bump(); err != nil {
		return Clause{}, err
	}
	c, err := p.clause()
	if err != nil {
		return Clause{}, err
	}
	if p.tok.kind != tokEOF {
		return Clause{}, p.errf("trailing input after clause")
	}
	return c, nil
}

// ParseAtom parses a single atom with no trailing '.'.
func ParseAtom(src string) (Atom, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.bump(); err != nil {
		return Atom{}, err
	}
	a, err := p.atom()
	if err != nil {
		return Atom{}, err
	}
	if p.tok.kind != tokEOF {
		return Atom{}, p.errf("trailing input after atom")
	}
	return a, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) bump() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Lang: "datalog", Pos: Position{Line: p.tok.line, Col: p.tok.col}, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	return p.bump()
}

func (p *parser) clause() (Clause, error) {
	head, err := p.atom()
	if err != nil {
		return Clause{}, err
	}
	if head.IsBuiltin() {
		return Clause{}, p.errf("a built-in cannot be a clause head")
	}
	c := Clause{Head: head}
	if p.tok.kind == tokColonDash {
		if err := p.bump(); err != nil {
			return Clause{}, err
		}
		for {
			lit, err := p.literal()
			if err != nil {
				return Clause{}, err
			}
			c.Body = append(c.Body, lit)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.bump(); err != nil {
				return Clause{}, err
			}
		}
	}
	if err := p.expect(tokDot); err != nil {
		return Clause{}, err
	}
	return c, nil
}

func (p *parser) literal() (Literal, error) {
	negated := false
	if p.tok.kind == tokNot {
		negated = true
		if err := p.bump(); err != nil {
			return Literal{}, err
		}
	}
	a, err := p.atom()
	if err != nil {
		return Literal{}, err
	}
	if negated && a.IsBuiltin() {
		return Literal{}, p.errf("negating a built-in is not supported; use the dual operator")
	}
	return Literal{Atom: a, Negated: negated}, nil
}

// atom parses p(t1,...,tn), a propositional atom p, or the infix built-ins
// t1 = t2 and t1 != t2, recording the source position of the first token.
func (p *parser) atom() (Atom, error) {
	pos := Position{Line: p.tok.line, Col: p.tok.col}
	a, err := p.atomInner()
	if err != nil {
		return a, err
	}
	a.Pos = pos
	return a, nil
}

func (p *parser) atomInner() (Atom, error) {
	// An atom can start with a term when it is an infix built-in (X != Y),
	// so parse a term first and decide.
	if p.tok.kind == tokVar || p.tok.kind == tokNumber {
		left, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		return p.infixRest(left)
	}
	if p.tok.kind != tokIdent {
		return Atom{}, p.errf("expected atom, found %s %q", p.tok.kind, p.tok.text)
	}
	name := p.tok.text
	if err := p.bump(); err != nil {
		return Atom{}, err
	}
	if p.tok.kind != tokLParen {
		// Either a propositional atom or the left side of an infix built-in.
		if p.tok.kind == tokEq || p.tok.kind == tokNeq {
			return p.infixRest(constOrNull(name))
		}
		return Atom{Pred: name}, nil
	}
	if err := p.bump(); err != nil { // consume '('
		return Atom{}, err
	}
	var args []term.Term
	if p.tok.kind == tokRParen {
		// p() — explicit empty argument list, as Program.String prints
		// propositional atoms derived from 0-ary heads.
		if err := p.bump(); err != nil {
			return Atom{}, err
		}
		return Atom{Pred: name}, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.bump(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name, Args: args}
	// f(x) = Y is also legal: compound on the left of infix.
	if p.tok.kind == tokEq || p.tok.kind == tokNeq {
		return p.infixRest(term.Comp(name, args...))
	}
	return a, nil
}

func (p *parser) infixRest(left term.Term) (Atom, error) {
	var pred string
	switch p.tok.kind {
	case tokEq:
		pred = BuiltinEq
	case tokNeq:
		pred = BuiltinNeq
	default:
		return Atom{}, p.errf("expected '=' or '!=' after term, found %s", p.tok.kind)
	}
	if err := p.bump(); err != nil {
		return Atom{}, err
	}
	right, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	return Atom{Pred: pred, Args: []term.Term{left, right}}, nil
}

func (p *parser) term() (term.Term, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.bump(); err != nil {
			return term.Term{}, err
		}
		return term.Var(name), nil
	case tokNumber:
		text := p.tok.text
		if err := p.bump(); err != nil {
			return term.Term{}, err
		}
		return term.Const(text), nil
	case tokIdent:
		name := p.tok.text
		if err := p.bump(); err != nil {
			return term.Term{}, err
		}
		if p.tok.kind != tokLParen {
			return constOrNull(name), nil
		}
		if err := p.bump(); err != nil {
			return term.Term{}, err
		}
		var args []term.Term
		for {
			t, err := p.term()
			if err != nil {
				return term.Term{}, err
			}
			args = append(args, t)
			if p.tok.kind == tokComma {
				if err := p.bump(); err != nil {
					return term.Term{}, err
				}
				continue
			}
			break
		}
		if err := p.expect(tokRParen); err != nil {
			return term.Term{}, err
		}
		return term.Comp(name, args...), nil
	}
	return term.Term{}, p.errf("expected term, found %s %q", p.tok.kind, p.tok.text)
}

func constOrNull(name string) term.Term {
	if name == "null" {
		return term.Null()
	}
	return term.Const(name)
}
