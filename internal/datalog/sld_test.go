package datalog

import (
	"sort"
	"testing"

	"repro/internal/term"
)

func TestSLDFactAndRule(t *testing.T) {
	p := mustParse(t, `
		parent(adam, abel). parent(adam, cain). parent(cain, enoch).
		anc(X, Y) :- parent(X, Y).
		anc(X, Z) :- parent(X, Y), anc(Y, Z).
	`)
	sld := NewSLD(p)
	ans, err := sld.Prove(NewAtom("anc", term.Const("adam"), term.Var("W")), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, a := range ans {
		got = append(got, a.Bindings.String())
	}
	sort.Strings(got)
	want := []string{"{W/abel}", "{W/cain}", "{W/enoch}"}
	if len(got) != len(want) {
		t.Fatalf("answers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("answers = %v, want %v", got, want)
		}
	}
}

func TestSLDProofTreeShape(t *testing.T) {
	p := mustParse(t, `
		parent(adam, cain). parent(cain, enoch).
		anc(X, Y) :- parent(X, Y).
		anc(X, Z) :- parent(X, Y), anc(Y, Z).
	`)
	sld := NewSLD(p)
	ans, err := sld.Prove(NewAtom("anc", term.Const("adam"), term.Const("enoch")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("want one proof, got %d", len(ans))
	}
	proof := ans[0].Proof
	// anc(adam,enoch) <- parent(adam,cain), anc(cain,enoch) <- parent(cain,enoch)
	if proof.Size() != 4 {
		t.Errorf("proof size = %d, want 4:\n%s", proof.Size(), proof)
	}
	if proof.Height() != 3 {
		t.Errorf("proof height = %d, want 3:\n%s", proof.Height(), proof)
	}
	if len(proof.Children) != 2 {
		t.Errorf("root should have two children:\n%s", proof)
	}
	if proof.Children[0].Rule != "fact" {
		t.Errorf("first child should be a fact leaf: %s", proof.Children[0].Rule)
	}
}

func TestSLDAgreesWithBottomUp(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). edge(c, d). edge(b, d).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`
	p := mustParse(t, src)
	goal := NewAtom("tc", term.Var("X"), term.Var("Y"))
	bottomUp, err := Query(p, nil, goal)
	if err != nil {
		t.Fatal(err)
	}
	sld := NewSLD(p)
	topDown, err := sld.Prove(goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	buSet := map[string]bool{}
	for _, s := range bottomUp {
		buSet[s.String()] = true
	}
	if len(topDown) != len(bottomUp) {
		t.Fatalf("top-down found %d answers, bottom-up %d", len(topDown), len(bottomUp))
	}
	for _, a := range topDown {
		if !buSet[a.Bindings.String()] {
			t.Errorf("SLD answer %s missing from bottom-up model", a.Bindings)
		}
	}
}

func TestSLDNegationAsFailure(t *testing.T) {
	p := mustParse(t, `
		node(a). node(b). edge(a, b).
		haspar(Y) :- edge(X, Y).
		root(X) :- node(X), not haspar(X).
	`)
	sld := NewSLD(p)
	ans, err := sld.Prove(NewAtom("root", term.Var("X")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0].Bindings.String() != "{X/a}" {
		t.Fatalf("root answers = %v", ans)
	}
	// The NAF step appears in the proof as a leaf.
	found := false
	var walk func(n *ProofNode)
	walk = func(n *ProofNode) {
		if n.Rule == "naf" {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ans[0].Proof)
	if !found {
		t.Error("expected a naf leaf in the proof tree")
	}
}

func TestSLDBuiltins(t *testing.T) {
	p := mustParse(t, `
		n(a). n(b).
		distinct(X, Y) :- n(X), n(Y), X != Y.
	`)
	sld := NewSLD(p)
	ans, err := sld.Prove(NewAtom("distinct", term.Var("X"), term.Var("Y")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("distinct answers = %d", len(ans))
	}
}

func TestSLDDepthBound(t *testing.T) {
	// Left recursion loops in SLD; the depth bound must turn that into an
	// error rather than a hang.
	p := mustParse(t, `
		loop(X) :- loop(X).
		loop(a).
	`)
	sld := NewSLD(p)
	sld.MaxDepth = 32
	if _, err := sld.Prove(NewAtom("loop", term.Const("b")), 0); err == nil {
		t.Fatal("expected depth-bound error on left recursion")
	}
}

func TestSLDMaxAnswers(t *testing.T) {
	p := mustParse(t, `n(a). n(b). n(c).`)
	sld := NewSLD(p)
	ans, err := sld.Prove(NewAtom("n", term.Var("X")), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("max answers not honored: %d", len(ans))
	}
}
