package datalog

import (
	"errors"
	"fmt"
)

// Validate checks every clause for safety (range restriction):
//
//   - every variable in the head occurs in a positive, non-built-in body
//     literal (or is bound through '=' chains rooted in such literals);
//   - every variable in a negated literal or in a '!=' built-in is bound
//     the same way.
//
// Safe programs never flounder: the evaluator can always ground a negated
// literal before testing it.
//
// All violations are reported, joined with errors.Join; each joined error
// keeps the historical single-violation message format.
func Validate(p *Program) error {
	var errs []error
	for _, c := range p.Clauses {
		if err := ValidateClause(c); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Unsafety describes one range-restriction violation in a clause: Var is
// the unsafe variable, and In is the negated literal or '!=' built-in it
// appears in (nil when the variable is unsafe in the head).
type Unsafety struct {
	Var string
	In  *Literal
}

// ValidateClause checks a single clause for safety. All violations are
// reported, joined with errors.Join.
func ValidateClause(c Clause) error {
	var errs []error
	for _, u := range UnsafeVars(c) {
		if u.In == nil {
			errs = append(errs, fmt.Errorf("datalog: unsafe clause %s: head variable %s is not range-restricted", c, u.Var))
		} else {
			errs = append(errs, fmt.Errorf("datalog: unsafe clause %s: variable %s in %q is not range-restricted", c, u.Var, u.In))
		}
	}
	return errors.Join(errs...)
}

// UnsafeVars returns every range-restriction violation in the clause, in
// head-then-body order. It is the engine behind ValidateClause and the
// lint safety pass.
func UnsafeVars(c Clause) []Unsafety {
	safe := map[string]bool{}
	for _, l := range c.Body {
		if !l.Negated && !l.Atom.IsBuiltin() {
			for _, v := range l.Atom.Vars(nil) {
				safe[v] = true
			}
		}
	}
	// Propagate through equalities: X = t makes X safe when all of t's
	// variables are safe, and vice versa.
	for changed := true; changed; {
		changed = false
		for _, l := range c.Body {
			if l.Negated || l.Atom.Pred != BuiltinEq || len(l.Atom.Args) != 2 {
				continue
			}
			lv, rv := l.Atom.Args[0].Vars(nil), l.Atom.Args[1].Vars(nil)
			if allSafe(safe, lv) && !allSafe(safe, rv) {
				for _, v := range rv {
					safe[v] = true
				}
				changed = true
			}
			if allSafe(safe, rv) && !allSafe(safe, lv) {
				for _, v := range lv {
					safe[v] = true
				}
				changed = true
			}
		}
	}
	var out []Unsafety
	for _, v := range c.Head.Vars(nil) {
		if !safe[v] {
			out = append(out, Unsafety{Var: v})
		}
	}
	for i := range c.Body {
		l := &c.Body[i]
		needGround := l.Negated || l.Atom.Pred == BuiltinNeq
		if !needGround {
			continue
		}
		for _, v := range l.Atom.Vars(nil) {
			if !safe[v] {
				out = append(out, Unsafety{Var: v, In: l})
			}
		}
	}
	return out
}

func allSafe(safe map[string]bool, vars []string) bool {
	for _, v := range vars {
		if !safe[v] {
			return false
		}
	}
	return true
}
