package datalog

import (
	"fmt"
)

// Validate checks every clause for safety (range restriction):
//
//   - every variable in the head occurs in a positive, non-built-in body
//     literal (or is bound through '=' chains rooted in such literals);
//   - every variable in a negated literal or in a '!=' built-in is bound
//     the same way.
//
// Safe programs never flounder: the evaluator can always ground a negated
// literal before testing it.
func Validate(p *Program) error {
	for _, c := range p.Clauses {
		if err := ValidateClause(c); err != nil {
			return err
		}
	}
	return nil
}

// ValidateClause checks a single clause for safety.
func ValidateClause(c Clause) error {
	safe := map[string]bool{}
	for _, l := range c.Body {
		if !l.Negated && !l.Atom.IsBuiltin() {
			for _, v := range l.Atom.Vars(nil) {
				safe[v] = true
			}
		}
	}
	// Propagate through equalities: X = t makes X safe when all of t's
	// variables are safe, and vice versa.
	for changed := true; changed; {
		changed = false
		for _, l := range c.Body {
			if l.Negated || l.Atom.Pred != BuiltinEq || len(l.Atom.Args) != 2 {
				continue
			}
			lv, rv := l.Atom.Args[0].Vars(nil), l.Atom.Args[1].Vars(nil)
			if allSafe(safe, lv) && !allSafe(safe, rv) {
				for _, v := range rv {
					safe[v] = true
				}
				changed = true
			}
			if allSafe(safe, rv) && !allSafe(safe, lv) {
				for _, v := range lv {
					safe[v] = true
				}
				changed = true
			}
		}
	}
	for _, v := range c.Head.Vars(nil) {
		if !safe[v] {
			return fmt.Errorf("datalog: unsafe clause %s: head variable %s is not range-restricted", c, v)
		}
	}
	for _, l := range c.Body {
		needGround := l.Negated || l.Atom.Pred == BuiltinNeq
		if !needGround {
			continue
		}
		for _, v := range l.Atom.Vars(nil) {
			if !safe[v] {
				return fmt.Errorf("datalog: unsafe clause %s: variable %s in %q is not range-restricted", c, v, l)
			}
		}
	}
	return nil
}

func allSafe(safe map[string]bool, vars []string) bool {
	for _, v := range vars {
		if !safe[v] {
			return false
		}
	}
	return true
}
