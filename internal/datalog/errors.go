package datalog

import "fmt"

// SyntaxError is the typed error the lexer and parser return for malformed
// source. It carries the language tag and the 1-based position so tools
// (notably internal/lint) can anchor diagnostics structurally instead of
// string-matching the rendered message. The rendered form stays
// "lang: line:col: msg", which existing callers and tests rely on.
//
// The MultiLog front-end reuses this type with Lang "multilog"; keeping a
// single type lets errors.As recover the position regardless of which
// parser failed.
type SyntaxError struct {
	Lang string // "datalog" or "multilog"
	Pos  Position
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %d:%d: %s", e.Lang, e.Pos.Line, e.Pos.Col, e.Msg)
}
