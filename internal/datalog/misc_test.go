package datalog

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func TestProgramPredicates(t *testing.T) {
	p := mustParse(t, `
		p(X) :- q(X), not r(X), X != a.
		q(a).
		?- s(W).
	`)
	preds := p.Predicates()
	want := []string{"p", "q", "r", "s"}
	if len(preds) != len(want) {
		t.Fatalf("Predicates = %v", preds)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("Predicates = %v, want %v", preds, want)
		}
	}
}

func TestStorePredsAndString(t *testing.T) {
	s := NewStore()
	s.Insert(NewAtom("b", term.Const("1")))
	s.Insert(NewAtom("a", term.Const("2")))
	if preds := s.Preds(); len(preds) != 2 || preds[0] != "a" || preds[1] != "b" {
		t.Errorf("Preds = %v", preds)
	}
	if got := s.String(); !strings.Contains(got, "a(2).") || !strings.Contains(got, "b(1).") {
		t.Errorf("String = %q", got)
	}
}

func TestNaiveStats(t *testing.T) {
	p := mustParse(t, chainProgram(8))
	e := Evaluator{Naive: true}
	if _, err := e.Eval(p, nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Iterations < 8 {
		t.Errorf("naive TC over an 8-chain needs ≥ 8 rounds, got %d", e.Stats.Iterations)
	}
}

func TestStratifyErrorNamesAPredicate(t *testing.T) {
	p := mustParse(t, `
		win(X) :- move(X, Y), not win(Y).
		move(a, b). move(b, a).
	`)
	_, err := Stratify(p)
	if err == nil || !strings.Contains(err.Error(), "win") {
		t.Errorf("diagnostic should name the offending predicate: %v", err)
	}
}

func TestLiteralString(t *testing.T) {
	l := Neg(NewAtom("p", term.Var("X")))
	if l.String() != "not p(X)" {
		t.Errorf("Literal.String = %q", l.String())
	}
}

func TestClauseString(t *testing.T) {
	c, _ := ParseClause("p(X) :- q(X), not r(X).")
	if c.String() != "p(X) :- q(X), not r(X)." {
		t.Errorf("Clause.String = %q", c.String())
	}
	f := Fact(NewAtom("p", term.Const("a")))
	if f.String() != "p(a)." {
		t.Errorf("Fact.String = %q", f.String())
	}
}

func TestEvalRejectsNonGroundFact(t *testing.T) {
	p := &Program{}
	p.Add(Clause{Head: NewAtom("p", term.Var("X"))})
	if _, err := Eval(p, nil); err == nil {
		t.Error("non-ground facts must be rejected")
	}
	e := Evaluator{Parallel: true}
	if _, err := e.Eval(p, nil); err == nil {
		t.Error("non-ground facts must be rejected in parallel mode too")
	}
}

// Compound terms flow through evaluation (the engine is not function-free,
// only tabling's termination is).
func TestEvalWithCompoundTerms(t *testing.T) {
	src := `
		base(pair(a, b)).
		left(X) :- base(pair(X, Y)).
	`
	got := answersOf(t, src, "left(W)")
	if len(got) != 1 || got[0] != "{W/a}" {
		t.Fatalf("left = %v", got)
	}
}
