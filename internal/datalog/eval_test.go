package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func answersOf(t *testing.T, src, goal string) []string {
	t.Helper()
	p := mustParse(t, src)
	g, err := ParseAtom(goal)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Query(p, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = s.String()
	}
	return out
}

func TestEvalTransitiveClosure(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). edge(c, d).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`
	got := answersOf(t, src, "tc(a, X)")
	if len(got) != 3 {
		t.Fatalf("tc(a, X) should have 3 answers, got %v", got)
	}
	want := map[string]bool{"{X/b}": true, "{X/c}": true, "{X/d}": true}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected answer %s", g)
		}
	}
}

func TestEvalSameGeneration(t *testing.T) {
	src := `
		par(c1, p). par(c2, p). par(g1, c1). par(g2, c2).
		sg(X, X) :- person(X).
		sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
		person(c1). person(c2). person(g1). person(g2). person(p).
	`
	got := answersOf(t, src, "sg(g1, Y)")
	want := map[string]bool{"{Y/g1}": true, "{Y/g2}": true}
	if len(got) != len(want) {
		t.Fatalf("sg(g1, Y) = %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected answer %s", g)
		}
	}
}

func TestEvalStratifiedNegation(t *testing.T) {
	src := `
		node(a). node(b). node(c).
		edge(a, b).
		haspar(Y) :- edge(X, Y).
		root(X) :- node(X), not haspar(X).
	`
	got := answersOf(t, src, "root(X)")
	want := map[string]bool{"{X/a}": true, "{X/c}": true}
	if len(got) != 2 {
		t.Fatalf("root(X) = %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected answer %s", g)
		}
	}
}

func TestEvalMultipleStrata(t *testing.T) {
	// win(X) :- move(X,Y), not win(Y) is NOT stratifiable; this variant is.
	src := `
		e(a, b). e(b, c).
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		start(a).
		unreached(X) :- node(X), not reach(X).
		node(a). node(b). node(c). node(d).
		doubly(X) :- unreached(X), not special(X).
		special(d).
	`
	got := answersOf(t, src, "doubly(X)")
	if len(got) != 0 {
		t.Fatalf("doubly(X) = %v, want none (only d is unreached and d is special)", got)
	}
	got = answersOf(t, src, "unreached(X)")
	if len(got) != 1 || got[0] != "{X/d}" {
		t.Fatalf("unreached(X) = %v", got)
	}
}

func TestEvalRejectsUnstratifiable(t *testing.T) {
	src := `
		move(a, b). move(b, a).
		win(X) :- move(X, Y), not win(Y).
	`
	p := mustParse(t, src)
	if _, err := Eval(p, nil); err == nil {
		t.Fatal("win-move must be rejected as unstratifiable")
	}
}

func TestEvalBuiltins(t *testing.T) {
	src := `
		n(a). n(b).
		pair(X, Y) :- n(X), n(Y), X != Y.
		same(X, Y) :- n(X), n(Y), X = Y.
	`
	got := answersOf(t, src, "pair(X, Y)")
	if len(got) != 2 {
		t.Fatalf("pair = %v", got)
	}
	got = answersOf(t, src, "same(X, Y)")
	if len(got) != 2 {
		t.Fatalf("same = %v", got)
	}
	for _, g := range got {
		if g != "{X/a, Y/a}" && g != "{X/b, Y/b}" {
			t.Errorf("unexpected same answer %s", g)
		}
	}
}

func TestEvalEqualityBinds(t *testing.T) {
	src := `
		n(a).
		tag(X, Y) :- n(X), Y = wrapped(X).
	`
	got := answersOf(t, src, "tag(a, Y)")
	if len(got) != 1 || got[0] != "{Y/wrapped(a)}" {
		t.Fatalf("tag = %v", got)
	}
}

func TestValidateUnsafeClauses(t *testing.T) {
	for _, src := range []string{
		"p(X) :- q(Y).",           // head var unbound
		"p(X) :- q(X), not r(Y).", // var only in negation
		"p(X) :- q(X), X != Y.",   // var only in !=
		"p(X, Y) :- q(X), Y != X.",
	} {
		p := mustParse(t, src+"\nq(a).\nr(a).")
		if _, err := Eval(p, nil); err == nil {
			t.Errorf("Eval(%q) should reject unsafe clause", src)
		}
	}
}

func TestValidateEqualityMakesSafe(t *testing.T) {
	src := `
		q(a).
		p(Y) :- q(X), Y = X.
		r(Y) :- q(X), wrapped(Y) = wrapped(X).
	`
	p := mustParse(t, src)
	if err := Validate(p); err != nil {
		t.Fatalf("equality-bound variables should be safe: %v", err)
	}
	if got := answersOf(t, src, "r(Y)"); len(got) != 1 || got[0] != "{Y/a}" {
		t.Fatalf("r = %v", got)
	}
}

func TestEvalWithEDB(t *testing.T) {
	edb := NewStore()
	edb.Insert(NewAtom("edge", term.Const("x"), term.Const("y")))
	edb.Insert(NewAtom("edge", term.Const("y"), term.Const("z")))
	p := mustParse(t, `tc(A, B) :- edge(A, B). tc(A, C) :- edge(A, B), tc(B, C).`)
	m, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Contains(NewAtom("tc", term.Const("x"), term.Const("z"))) {
		t.Error("tc(x,z) should be derivable from the EDB")
	}
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	src := chainProgram(30)
	p := mustParse(t, src)
	semi := Evaluator{}
	naive := Evaluator{Naive: true}
	m1, err := semi.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := naive.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Error("naive and semi-naive models differ")
	}
	if semi.Stats.Derivations >= naive.Stats.Derivations {
		t.Errorf("semi-naive should derive fewer duplicates: semi=%d naive=%d",
			semi.Stats.Derivations, naive.Stats.Derivations)
	}
}

func chainProgram(n int) string {
	src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	return src
}

func TestIndexedAndUnindexedAgree(t *testing.T) {
	p := mustParse(t, chainProgram(20))
	idx := Evaluator{}
	noidx := Evaluator{NoIndex: true}
	m1, err := idx.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := noidx.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Error("indexed and unindexed models differ")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	a := NewAtom("p", term.Const("x"))
	if added, err := s.Insert(a); err != nil || !added {
		t.Errorf("first insert = (%v, %v), want new", added, err)
	}
	if added, err := s.Insert(a); err != nil || added {
		t.Errorf("duplicate insert = (%v, %v), want not new", added, err)
	}
	if !s.Contains(a) || s.Len() != 1 {
		t.Error("store lost the fact")
	}
	if got := s.Facts("p"); len(got) != 1 || !got[0].Equal(a) {
		t.Errorf("Facts = %v", got)
	}
	if added, err := s.Insert(NewAtom("p", term.Var("X"))); err == nil || added {
		t.Errorf("insert of non-ground atom = (%v, %v), want error", added, err)
	}
	if s.Len() != 1 {
		t.Error("failed insert must not change the store")
	}
}

func TestStoreInsertFault(t *testing.T) {
	s := NewStore()
	boom := fmt.Errorf("disk on fire")
	s.InsertFault = func(a Atom) error {
		if a.Pred == "bad" {
			return boom
		}
		return nil
	}
	if _, err := s.Insert(NewAtom("ok", term.Const("x"))); err != nil {
		t.Fatalf("unfaulted insert: %v", err)
	}
	if _, err := s.Insert(NewAtom("bad", term.Const("x"))); err != boom {
		t.Fatalf("faulted insert err = %v, want boom", err)
	}
	if s.Len() != 1 {
		t.Error("faulted insert must not land")
	}
}

func TestStoreMatchUsesIndex(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Insert(NewAtom("p", term.Const(fmt.Sprintf("k%d", i)), term.Const("v")))
	}
	count := 0
	s.Match(NewAtom("p", term.Const("k42"), term.Var("V")), term.Subst{}, func(sub term.Subst) bool {
		count++
		if !sub.Apply(term.Var("V")).Equal(term.Const("v")) {
			t.Error("wrong binding from indexed match")
		}
		return true
	})
	if count != 1 {
		t.Errorf("indexed match found %d facts", count)
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.Insert(NewAtom("p", term.Const("a")))
	c := s.Clone()
	c.Insert(NewAtom("p", term.Const("b")))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone is not independent")
	}
	// The clone's indexes must be rebuilt, not aliased: an indexed match on
	// the original must not see facts inserted into the clone, and vice
	// versa — this is the aliasing gap copy-on-write snapshots rely on.
	for name, st := range map[string]*Store{"original": s, "clone": c} {
		want := map[string]int{"original": 1, "clone": 2}[name]
		got := 0
		st.Match(NewAtom("p", term.Var("X")), term.Subst{}, func(term.Subst) bool {
			got++
			return true
		})
		if got != want {
			t.Errorf("%s: match found %d facts, want %d", name, got, want)
		}
		got = 0
		st.Match(NewAtom("p", term.Const("b")), term.Subst{}, func(term.Subst) bool {
			got++
			return true
		})
		if wantB := want - 1; got != wantB {
			t.Errorf("%s: indexed match on b found %d facts, want %d", name, got, wantB)
		}
	}
	if s.Contains(NewAtom("p", term.Const("b"))) {
		t.Error("clone insert leaked into the original")
	}
	// Fault hooks are deliberately not carried over: a clone is a private
	// working copy.
	s.InsertFault = func(Atom) error { return fmt.Errorf("injected") }
	c2 := s.Clone()
	if c2.InsertFault != nil {
		t.Error("clone copied the fault hook")
	}
	if _, err := c2.Insert(NewAtom("p", term.Const("c"))); err != nil {
		t.Errorf("clone insert hit the original's fault hook: %v", err)
	}
}

func TestStratify(t *testing.T) {
	p := mustParse(t, `
		b(X) :- a(X).
		c(X) :- b(X), not d(X).
		d(X) :- a(X), not e(X).
		a(k). e(k).
	`)
	strata, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(strata["e"] < strata["d"] && strata["d"] < strata["c"]) {
		t.Errorf("strata wrong: %v", strata)
	}
	if strata["a"] != 0 {
		t.Errorf("EDB predicate a should be stratum 0, got %d", strata["a"])
	}
}

func TestStratifyNegativeCycle(t *testing.T) {
	p := mustParse(t, `
		p(X) :- base(X), not q(X).
		q(X) :- base(X), not p(X).
		base(a).
	`)
	if _, err := Stratify(p); err == nil {
		t.Fatal("p/q negation cycle must not stratify")
	}
}

func TestDependencyGraph(t *testing.T) {
	p := mustParse(t, `p(X) :- q(X), not r(X), X != a. p(X) :- q(X).`)
	edges := DependencyGraph(p)
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		switch e.To {
		case "q":
			if e.Negative {
				t.Error("p->q should be positive")
			}
		case "r":
			if !e.Negative {
				t.Error("p->r should be negative")
			}
		default:
			t.Errorf("unexpected edge %v", e)
		}
	}
}

// Property: naive and semi-naive agree on random acyclic edge programs with
// negation on top.
func TestQuickNaiveSemiNaiveAgree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		src := `
			tc(X, Y) :- edge(X, Y).
			tc(X, Z) :- edge(X, Y), tc(Y, Z).
			nonleaf(X) :- edge(X, Y).
			leaf(X) :- node(X), not nonleaf(X).
		`
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("node(n%d).\n", i)
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					src += fmt.Sprintf("edge(n%d, n%d).\n", i, j)
				}
			}
		}
		p, err := Parse(src)
		if err != nil {
			return false
		}
		semi := Evaluator{}
		naive := Evaluator{Naive: true}
		m1, err1 := semi.Eval(p, nil)
		m2, err2 := naive.Eval(p, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return m1.String() == m2.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvalStatsPopulated(t *testing.T) {
	var e Evaluator
	p := mustParse(t, chainProgram(5))
	if _, err := e.Eval(p, nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Iterations == 0 || e.Stats.Facts == 0 || e.Stats.RuleFirings == 0 {
		t.Errorf("stats not populated: %+v", e.Stats)
	}
}
