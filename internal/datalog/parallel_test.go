package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParallelAgreesWithSequential(t *testing.T) {
	src := chainProgram(40) + `
		nonleaf(X) :- edge(X, Y).
		leaf(X) :- node(X), not nonleaf(X).
	`
	for i := 0; i <= 40; i++ {
		src += fmt.Sprintf("node(n%d).\n", i)
	}
	p := mustParse(t, src)
	seq := Evaluator{}
	par := Evaluator{Parallel: true}
	m1, err := seq.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := par.Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Error("parallel and sequential models differ")
	}
}

func TestParallelWorkerBound(t *testing.T) {
	p := mustParse(t, chainProgram(10))
	for _, workers := range []int{1, 2, 8} {
		e := Evaluator{Parallel: true, Workers: workers}
		m, err := e.Eval(p, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !m.Contains(mustAtom(t, "tc(n0, n10)")) {
			t.Errorf("workers=%d: missing closure fact", workers)
		}
	}
}

func mustAtom(t *testing.T, src string) Atom {
	t.Helper()
	a, err := ParseAtom(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParallelErrorPropagates(t *testing.T) {
	// A clause that flounders at run time cannot exist after validation,
	// so exercise the error path with a non-ground derived head by
	// bypassing nothing — instead check that unsafe programs still fail
	// before parallel evaluation starts.
	p := mustParse(t, `p(X) :- q(Y).`+"\nq(a).")
	e := Evaluator{Parallel: true}
	if _, err := e.Eval(p, nil); err == nil {
		t.Fatal("unsafe program must fail under parallel evaluation too")
	}
}

// Property: sequential and parallel evaluation produce identical models on
// random programs with recursion and stratified negation.
func TestQuickParallelAgrees(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		src := `
			tc(X, Y) :- edge(X, Y).
			tc(X, Z) :- edge(X, Y), tc(Y, Z).
			nonleaf(X) :- edge(X, Y).
			leaf(X) :- node(X), not nonleaf(X).
		`
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("node(n%d).\n", i)
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					src += fmt.Sprintf("edge(n%d, n%d).\n", i, j)
				}
			}
		}
		p, err := Parse(src)
		if err != nil {
			return false
		}
		seq := Evaluator{}
		par := Evaluator{Parallel: true, Workers: 1 + r.Intn(4)}
		m1, err1 := seq.Eval(p, nil)
		m2, err2 := par.Eval(p, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return m1.String() == m2.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
