package datalog

import (
	"fmt"
	"sort"
)

// DepEdge is an edge of the predicate dependency graph: Head depends on Body
// (positively or through negation).
type DepEdge struct {
	From, To string // From = head predicate, To = body predicate
	Negative bool
}

// DependencyGraph returns the dependency edges of the program, deduplicated,
// keeping an edge negative if any occurrence is negative.
func DependencyGraph(p *Program) []DepEdge {
	type key struct{ from, to string }
	neg := map[key]bool{}
	seen := map[key]bool{}
	var order []key
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			k := key{c.Head.Pred, l.Atom.Pred}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
			if l.Negated {
				neg[k] = true
			}
		}
	}
	out := make([]DepEdge, len(order))
	for i, k := range order {
		out[i] = DepEdge{From: k.from, To: k.to, Negative: neg[k]}
	}
	return out
}

// Stratify assigns each predicate a stratum number such that positive
// dependencies stay within or below a stratum and negative dependencies go
// strictly below. It returns an error when the program is not stratifiable
// (a negative edge participates in a dependency cycle).
func Stratify(p *Program) (map[string]int, error) {
	preds := p.Predicates()
	stratum := map[string]int{}
	for _, q := range preds {
		stratum[q] = 0
	}
	edges := DependencyGraph(p)
	// Standard iterative lifting; at most |preds| rounds, more means a
	// negative cycle.
	for round := 0; ; round++ {
		changed := false
		for _, e := range edges {
			want := stratum[e.To]
			if e.Negative {
				want++
			}
			if stratum[e.From] < want {
				stratum[e.From] = want
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > len(preds)+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable: negation through recursion involving %s", findNegCycle(edges))
		}
	}
	return stratum, nil
}

// findNegCycle names one predicate on a negative cycle, for diagnostics.
func findNegCycle(edges []DepEdge) string {
	adj := map[string][]DepEdge{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	var preds []string
	for p := range adj {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, start := range preds {
		// DFS looking for a cycle back to start that uses ≥1 negative edge.
		type frame struct {
			node   string
			sawNeg bool
		}
		stack := []frame{{start, false}}
		visited := map[frame]bool{}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[f] {
				continue
			}
			visited[f] = true
			for _, e := range adj[f.node] {
				sawNeg := f.sawNeg || e.Negative
				if e.To == start && sawNeg {
					return start
				}
				stack = append(stack, frame{e.To, sawNeg})
			}
		}
	}
	return "(unknown)"
}

// Strata groups the program's clauses by the stratum of their head
// predicate, lowest first.
func Strata(p *Program) ([][]Clause, error) {
	stratum, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Clause, maxS+1)
	for _, c := range p.Clauses {
		s := stratum[c.Head.Pred]
		out[s] = append(out[s], c)
	}
	return out, nil
}
