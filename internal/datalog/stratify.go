package datalog

import (
	"fmt"
	"sort"
)

// DepEdge is an edge of the predicate dependency graph: Head depends on Body
// (positively or through negation).
type DepEdge struct {
	From, To string // From = head predicate, To = body predicate
	Negative bool
}

// DependencyGraph returns the dependency edges of the program, deduplicated,
// keeping an edge negative if any occurrence is negative.
func DependencyGraph(p *Program) []DepEdge {
	type key struct{ from, to string }
	neg := map[key]bool{}
	seen := map[key]bool{}
	var order []key
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			k := key{c.Head.Pred, l.Atom.Pred}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
			if l.Negated {
				neg[k] = true
			}
		}
	}
	out := make([]DepEdge, len(order))
	for i, k := range order {
		out[i] = DepEdge{From: k.from, To: k.to, Negative: neg[k]}
	}
	return out
}

// Stratify assigns each predicate a stratum number such that positive
// dependencies stay within or below a stratum and negative dependencies go
// strictly below. It returns an error when the program is not stratifiable
// (a negative edge participates in a dependency cycle).
func Stratify(p *Program) (map[string]int, error) {
	preds := p.Predicates()
	stratum := map[string]int{}
	for _, q := range preds {
		stratum[q] = 0
	}
	edges := DependencyGraph(p)
	// Standard iterative lifting; at most |preds| rounds, more means a
	// negative cycle.
	for round := 0; ; round++ {
		changed := false
		for _, e := range edges {
			want := stratum[e.To]
			if e.Negative {
				want++
			}
			if stratum[e.From] < want {
				stratum[e.From] = want
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > len(preds)+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable: negation through recursion: %s", FormatCycle(NegativeCycleEdges(edges)))
		}
	}
	return stratum, nil
}

// NegativeCycle returns a dependency cycle of the program that passes
// through at least one negative edge — the witness that the program is not
// stratifiable — or nil when every negation is stratified. The cycle is
// returned as its edge sequence, starting at the negative edge.
func NegativeCycle(p *Program) []DepEdge {
	return NegativeCycleEdges(DependencyGraph(p))
}

// NegativeCycleEdges is NegativeCycle over a precomputed edge list.
func NegativeCycleEdges(edges []DepEdge) []DepEdge {
	adj := map[string][]DepEdge{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	// For determinism, try negative edges in sorted order; for each negative
	// edge u -not-> v, a shortest path v ⇒ u (BFS) closes the cycle.
	var negs []DepEdge
	for _, e := range edges {
		if e.Negative {
			negs = append(negs, e)
		}
	}
	sort.Slice(negs, func(i, j int) bool {
		if negs[i].From != negs[j].From {
			return negs[i].From < negs[j].From
		}
		return negs[i].To < negs[j].To
	})
	for _, ne := range negs {
		if ne.To == ne.From {
			return []DepEdge{ne}
		}
		// BFS from ne.To back to ne.From.
		prev := map[string]DepEdge{}
		seen := map[string]bool{ne.To: true}
		queue := []string{ne.To}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range adj[n] {
				if seen[e.To] {
					continue
				}
				seen[e.To] = true
				prev[e.To] = e
				if e.To == ne.From {
					// Reconstruct the path ne.To ⇒ ne.From.
					var path []DepEdge
					for at := ne.From; at != ne.To; at = prev[at].From {
						path = append(path, prev[at])
					}
					cycle := []DepEdge{ne}
					for i := len(path) - 1; i >= 0; i-- {
						cycle = append(cycle, path[i])
					}
					return cycle
				}
				queue = append(queue, e.To)
			}
		}
	}
	return nil
}

// FormatCycle renders an edge cycle as "p -> not q -> r -> p", writing
// "not" before the target of each negative edge.
func FormatCycle(cycle []DepEdge) string {
	if len(cycle) == 0 {
		return "(unknown cycle)"
	}
	var b []byte
	b = append(b, cycle[0].From...)
	for _, e := range cycle {
		if e.Negative {
			b = append(b, " -> not "...)
		} else {
			b = append(b, " -> "...)
		}
		b = append(b, e.To...)
	}
	return string(b)
}

// Strata groups the program's clauses by the stratum of their head
// predicate, lowest first.
func Strata(p *Program) ([][]Clause, error) {
	stratum, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Clause, maxS+1)
	for _, c := range p.Clauses {
		s := stratum[c.Head.Pred]
		out[s] = append(out[s], c)
	}
	return out, nil
}
