package datalog

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/resource"
)

// exponentialProgram returns a program whose model has base^arity facts for
// the big/arity cross product — adversarial input for deadline tests.
func exponentialProgram(t testing.TB, base, arity int) *Program {
	t.Helper()
	var b strings.Builder
	for i := 0; i < base; i++ {
		fmt.Fprintf(&b, "d(k%d).\n", i)
	}
	vars := make([]string, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i)
	}
	fmt.Fprintf(&b, "big(%s) :- ", strings.Join(vars, ","))
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "d(%s)", v)
	}
	b.WriteString(".\n")
	p, err := Parse(b.String())
	if err != nil {
		t.Fatalf("parse exponential program: %v", err)
	}
	return p
}

func TestEvalLimitedFactBudget(t *testing.T) {
	p := mustParse(t, `
		e(a,b). e(b,c). e(c,d). e(d,e).
		tc(X,Y) :- e(X,Y).
		tc(X,Y) :- e(X,Z), tc(Z,Y).
	`)
	model, stats, err := EvalLimited(context.Background(), p, nil, resource.Limits{MaxFacts: 6})
	var be *resource.ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != "facts" {
		t.Fatalf("err = %v, want facts budget", err)
	}
	if model == nil {
		t.Fatal("limit stop must return the partial model")
	}
	if !stats.Truncated || !stats.Resource.Truncated {
		t.Fatalf("stats = %+v, want Truncated", stats)
	}
	if stats.Resource.FactsDerived == 0 {
		t.Fatal("no partial progress recorded")
	}
	// Sanity: the full model is bigger than where we stopped.
	full, _, err := EvalLimited(context.Background(), p, nil, resource.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() <= model.Len() {
		t.Fatalf("full %d ≤ partial %d", full.Len(), model.Len())
	}
}

func TestEvalLimitedDeadline(t *testing.T) {
	for _, tc := range []struct {
		name string
		eval Evaluator
	}{
		{"semi-naive", Evaluator{}},
		{"naive", Evaluator{Naive: true}},
		{"no-index", Evaluator{NoIndex: true}},
		{"parallel", Evaluator{Parallel: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := exponentialProgram(t, 12, 6)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			e := tc.eval
			start := time.Now()
			model, err := e.EvalContext(ctx, p, nil)
			elapsed := time.Since(start)
			if !errors.Is(err, resource.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if elapsed > 500*time.Millisecond {
				t.Fatalf("deadline overshot: %v", elapsed)
			}
			if model == nil || !e.Stats.Truncated {
				t.Fatalf("model=%v Stats=%+v, want partial model + Truncated", model != nil, e.Stats)
			}
		})
	}
}

func TestEvalLimitedCompletesUnchanged(t *testing.T) {
	// A generous governor must not change the model.
	p := mustParse(t, `
		e(a,b). e(b,c). e(c,a).
		tc(X,Y) :- e(X,Y).
		tc(X,Y) :- e(X,Z), tc(Z,Y).
		iso(X) :- e(X,X).
		lone(X) :- e(X,Y), not iso(X), X != Y.
	`)
	want, err := Eval(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := EvalLimited(context.Background(), p, nil, resource.Limits{MaxFacts: 1 << 20, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("governed model differs from ungoverned model")
	}
	if stats.Truncated || stats.StrataCompleted == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestParallelCancelMidStratumNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		p := exponentialProgram(t, 12, 6)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		e := Evaluator{Parallel: true, Workers: 8}
		_, err := e.EvalContext(ctx, p, nil)
		cancel()
		if !errors.Is(err, resource.ErrCanceled) {
			t.Fatalf("run %d: err = %v, want ErrCanceled", i, err)
		}
	}
	// evalStratumParallel joins its workers before returning (wg.Wait), so
	// the count must settle back; allow scheduler slack.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParallelDeterministicPartialStats(t *testing.T) {
	// The parallel evaluator merges derivations sequentially between rounds,
	// so an insert-probe fires at a deterministic point even though the jobs
	// run concurrently: partial stats must be identical across runs.
	boom := errors.New("probe")
	run := func() (int64, error) {
		p := exponentialProgram(t, 6, 4)
		e := Evaluator{Parallel: true, Workers: 8, Limits: resource.Limits{
			Probe: func(ev resource.Event, n int64) error {
				if ev == resource.EventInsert && n == 100 {
					return boom
				}
				return nil
			},
		}}
		_, err := e.EvalContext(context.Background(), p, nil)
		return e.Stats.Resource.FactsDerived, err
	}
	first, err := run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want probe error", err)
	}
	if first != 100 {
		t.Fatalf("FactsDerived = %d, want 100", first)
	}
	for i := 0; i < 4; i++ {
		again, err := run()
		if !errors.Is(err, boom) || again != first {
			t.Fatalf("run %d: FactsDerived = %d (err %v), want %d", i, again, err, first)
		}
	}
}

func TestSLDLimited(t *testing.T) {
	p := exponentialProgram(t, 12, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sld := NewSLD(p)
	start := time.Now()
	answers, err := sld.ProveContext(ctx, mustAtom(t, "big(A,B,C,D,E,F)"), 0)
	if !errors.Is(err, resource.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline overshot: %v", elapsed)
	}
	if len(answers) == 0 || !sld.LastStats.Truncated {
		t.Fatalf("answers=%d LastStats=%+v, want partial answers", len(answers), sld.LastStats)
	}
}

func TestTabledLimited(t *testing.T) {
	p := exponentialProgram(t, 12, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	tb := NewTabled(p)
	start := time.Now()
	_, err := tb.ProveContext(ctx, mustAtom(t, "big(A,B,C,D,E,F)"))
	if !errors.Is(err, resource.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline overshot: %v", elapsed)
	}
	if !tb.LastStats.Truncated {
		t.Fatalf("LastStats = %+v, want Truncated", tb.LastStats)
	}
}

func TestQueryMagicLimited(t *testing.T) {
	p := exponentialProgram(t, 12, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, stats, err := QueryMagicLimited(ctx, p, nil, mustAtom(t, "big(A,B,C,D,E,F)"), resource.Limits{})
	if !errors.Is(err, resource.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline overshot: %v", elapsed)
	}
	if !stats.Truncated {
		t.Fatalf("stats = %+v, want Truncated", stats)
	}
}

func TestEvalContextInsertFaultPropagates(t *testing.T) {
	p := mustParse(t, `
		tc(X,Y) :- e(X,Y).
		tc(X,Y) :- e(X,Z), tc(Z,Y).
	`)
	edb := NewStore()
	for i := 0; i < 10; i++ {
		if _, err := edb.Insert(mustAtom(t, fmt.Sprintf("e(n%d, n%d)", i, i+1))); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("store down")
	count := 0
	edb.InsertFault = func(Atom) error {
		count++
		if count > 15 {
			return boom
		}
		return nil
	}
	_, err := Eval(p, edb)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected store failure", err)
	}
}
