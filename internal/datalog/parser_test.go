package datalog

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseFactsRulesQueries(t *testing.T) {
	p := mustParse(t, `
		% genealogy
		parent(adam, abel).
		parent(adam, cain). // line comment
		anc(X, Y) :- parent(X, Y).
		anc(X, Z) :- parent(X, Y), anc(Y, Z).
		?- anc(adam, X).
	`)
	if len(p.Clauses) != 4 || len(p.Queries) != 1 {
		t.Fatalf("got %d clauses, %d queries", len(p.Clauses), len(p.Queries))
	}
	if !p.Clauses[0].IsFact() {
		t.Error("first clause should be a fact")
	}
	if p.Clauses[3].Head.Pred != "anc" || len(p.Clauses[3].Body) != 2 {
		t.Errorf("rule parsed wrong: %s", p.Clauses[3])
	}
	if p.Queries[0].Pred != "anc" {
		t.Errorf("query parsed wrong: %s", p.Queries[0])
	}
}

func TestParseNegationAndBuiltins(t *testing.T) {
	p := mustParse(t, `
		sibling(X, Y) :- parent(P, X), parent(P, Y), X != Y.
		orphanless(X) :- person(X), not orphan(X).
		alias(X, Y) :- person(X), Y = X.
	`)
	c := p.Clauses[0]
	if c.Body[2].Atom.Pred != BuiltinNeq {
		t.Errorf("expected != builtin, got %s", c.Body[2])
	}
	if !p.Clauses[1].Body[1].Negated {
		t.Error("expected negated literal")
	}
	if p.Clauses[2].Body[1].Atom.Pred != BuiltinEq {
		t.Errorf("expected = builtin, got %s", p.Clauses[2].Body[1])
	}
}

func TestParseQuotedNumbersNull(t *testing.T) {
	p := mustParse(t, `fact('two words', 42, null).`)
	args := p.Clauses[0].Head.Args
	if !args[0].Equal(term.Const("two words")) {
		t.Errorf("quoted atom: %s", args[0])
	}
	if !args[1].Equal(term.Const("42")) {
		t.Errorf("number: %s", args[1])
	}
	if !args[2].IsNull() {
		t.Errorf("null: %s", args[2])
	}
}

func TestParseCompoundTerms(t *testing.T) {
	p := mustParse(t, `likes(mary, food(pizza, X)).`)
	arg := p.Clauses[0].Head.Args[1]
	if arg.Kind() != term.KindCompound || arg.Name() != "food" {
		t.Errorf("compound term: %s", arg)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"p(a",                 // unbalanced
		"p(a) :- q(b)",        // missing dot
		"p(a). q(",            // second clause broken
		":- p(a).",            // headless
		"p(a) :- not X != Y.", // negated builtin
		"X = Y.",              // builtin as head (infix-only clause)
		"p('unterminated.",
		"p(a)!",
		"p(a) ? q(b).",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `parent(adam, abel).
anc(X, Z) :- parent(X, Y), anc(Y, Z), X != Z.
root(X) :- node(X), not inner(X).
?- anc(adam, X).
`
	p := mustParse(t, src)
	again := mustParse(t, p.String())
	if p.String() != again.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", p, again)
	}
}

func TestParseClauseAndAtom(t *testing.T) {
	c, err := ParseClause("p(X) :- q(X).")
	if err != nil || c.Head.Pred != "p" {
		t.Fatalf("ParseClause: %v %v", c, err)
	}
	if _, err := ParseClause("p(X) :- q(X). extra"); err == nil {
		t.Error("trailing input must fail")
	}
	a, err := ParseAtom("q(a, B)")
	if err != nil || a.Pred != "q" || !a.Args[1].IsVar() {
		t.Fatalf("ParseAtom: %v %v", a, err)
	}
	if _, err := ParseAtom("q(a) extra"); err == nil {
		t.Error("trailing input must fail")
	}
}

func TestAtomStringInfix(t *testing.T) {
	a := NewAtom(BuiltinNeq, term.Var("X"), term.Var("Y"))
	if a.String() != "X != Y" {
		t.Errorf("infix rendering: %q", a.String())
	}
}

func TestClauseRenameApart(t *testing.T) {
	c, _ := ParseClause("p(X, Y) :- q(X), r(Y, X).")
	var r term.Renamer
	rc := c.Rename(&r)
	if rc.Head.Args[0].Equal(term.Var("X")) {
		t.Error("rename must produce fresh variables")
	}
	// Consistency: X in head equals X in body.
	if !rc.Head.Args[0].Equal(rc.Body[0].Atom.Args[0]) {
		t.Error("rename must be consistent across the clause")
	}
	if !strings.HasPrefix(rc.Head.Args[0].Name(), "_") {
		t.Errorf("fresh variables should be '_'-prefixed: %s", rc.Head.Args[0])
	}
}
