package datalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/term"
)

func atoms(t *testing.T, srcs ...string) []Atom {
	t.Helper()
	out := make([]Atom, len(srcs))
	for i, s := range srcs {
		out[i] = mustAtom(t, s)
	}
	return out
}

func TestStoreRemove(t *testing.T) {
	s := NewStore()
	facts := []Atom{
		NewAtom("e", term.Const("a"), term.Const("b")),
		NewAtom("e", term.Const("b"), term.Const("c")),
		NewAtom("e", term.Const("a"), term.Const("c")),
		NewAtom("p", term.Const("x")),
	}
	for _, f := range facts {
		if added, err := s.Insert(f); err != nil || !added {
			t.Fatalf("insert %s: added=%v err=%v", f, added, err)
		}
	}
	if s.Remove(NewAtom("e", term.Const("z"), term.Const("z"))) {
		t.Fatal("removed an absent fact")
	}
	if !s.Remove(facts[0]) {
		t.Fatal("failed to remove a present fact")
	}
	if s.Contains(facts[0]) {
		t.Fatal("removed fact still present")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// The index must still find the swapped-in fact.
	var hits int
	s.Match(NewAtom("e", term.Const("a"), term.Var("X")), term.Subst{}, func(term.Subst) bool {
		hits++
		return true
	})
	if hits != 1 {
		t.Fatalf("indexed match after remove: %d hits, want 1", hits)
	}
	// Re-insert and verify it comes back cleanly.
	if added, err := s.Insert(facts[0]); err != nil || !added {
		t.Fatalf("re-insert: added=%v err=%v", added, err)
	}
	hits = 0
	s.Match(NewAtom("e", term.Var("X"), term.Var("Y")), term.Subst{}, func(term.Subst) bool {
		hits++
		return true
	})
	if hits != 3 {
		t.Fatalf("unindexed scan after re-insert: %d hits, want 3", hits)
	}
	// Removing the last fact of a predicate drops the relation.
	if !s.Remove(facts[3]) {
		t.Fatal("failed to remove p(x)")
	}
	if got := s.Facts("p"); got != nil {
		t.Fatalf("Facts(p) = %v after removing the only fact", got)
	}
}

// applyRef applies a delta to a plain fact multiset, the reference the
// incremental engine is checked against.
type refState struct {
	rules *Program
	base  map[string]int
	atoms map[string]Atom
}

func newRefState(t *testing.T, src string) (*refState, *Incremental) {
	t.Helper()
	p := mustParse(t, src)
	rs := &refState{rules: &Program{}, base: map[string]int{}, atoms: map[string]Atom{}}
	for _, c := range p.Clauses {
		if c.IsFact() {
			rs.base[c.Head.Key()]++
			rs.atoms[c.Head.Key()] = c.Head
		} else {
			rs.rules.Add(c)
		}
	}
	inc, err := NewIncremental(p, nil)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	return rs, inc
}

// full evaluates the reference state from scratch.
func (rs *refState) full(t *testing.T) (*Store, *Incremental) {
	t.Helper()
	p := &Program{}
	p.Add(rs.rules.Clauses...)
	for k, n := range rs.base {
		for i := 0; i < n; i++ {
			p.Add(Fact(rs.atoms[k]))
		}
	}
	model, err := Eval(p, nil)
	if err != nil {
		t.Fatalf("reference Eval: %v", err)
	}
	fresh, err := NewIncremental(p, nil)
	if err != nil {
		t.Fatalf("reference NewIncremental: %v", err)
	}
	return model, fresh
}

func (rs *refState) apply(adds, dels []Atom) {
	for _, d := range dels {
		if rs.base[d.Key()] > 0 {
			rs.base[d.Key()]--
			if rs.base[d.Key()] == 0 {
				delete(rs.base, d.Key())
			}
		}
	}
	for _, a := range adds {
		rs.base[a.Key()]++
		rs.atoms[a.Key()] = a
	}
}

// step applies the delta to both the engine and the reference and fails the
// test on any divergence in tuple sets or derivation counts.
func step(t *testing.T, rs *refState, inc *Incremental, adds, dels []Atom) *DeltaResult {
	t.Helper()
	before := inc.Model().String()
	res, err := inc.ApplyDelta(adds, dels)
	if err != nil {
		t.Fatalf("ApplyDelta(+%v, -%v): %v", adds, dels, err)
	}
	rs.apply(adds, dels)
	refModel, fresh := rs.full(t)
	if got, want := inc.Model().String(), refModel.String(); got != want {
		t.Fatalf("model divergence after +%v -%v\nbefore:\n%s\nincremental:\n%s\nreference:\n%s",
			adds, dels, before, got, want)
	}
	if got, want := inc.Counts(), fresh.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("count divergence after +%v -%v\nincremental: %v\nreference:   %v",
			adds, dels, got, want)
	}
	return res
}

func TestIncrementalChainTC(t *testing.T) {
	rs, inc := newRefState(t, `
		e(a, b). e(b, c). e(c, d).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`)
	res := step(t, rs, inc, atoms(t, "e(d, f)"), nil)
	if len(res.Changed["tc"].Added) == 0 {
		t.Fatal("adding an edge added no tc tuples")
	}
	step(t, rs, inc, nil, atoms(t, "e(b, c)"))
	step(t, rs, inc, atoms(t, "e(b, c)"), nil)
	// Delete and re-add different support in one delta.
	step(t, rs, inc, atoms(t, "e(a, c)"), atoms(t, "e(a, b)"))
}

func TestIncrementalCyclicSupport(t *testing.T) {
	// The classic counting-unsound case: p(a)'s recursive firing via the
	// cycle keeps a nonzero count after the external support is deleted.
	// DRed must take p(a) (and the cycle-mate q(a)) out.
	rs, inc := newRefState(t, `
		e(a).
		p(X) :- e(X).
		p(X) :- q(X).
		q(X) :- p(X).
	`)
	res := step(t, rs, inc, nil, atoms(t, "e(a)"))
	if len(res.Changed["p"].Deleted) != 1 || len(res.Changed["q"].Deleted) != 1 {
		t.Fatalf("cyclic support not deleted: %+v", res.Changed)
	}
	step(t, rs, inc, atoms(t, "e(a)"), nil)
}

func TestIncrementalNegation(t *testing.T) {
	rs, inc := newRefState(t, `
		node(a). node(b). node(c).
		start(a).
		e(a, b).
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		unreached(X) :- node(X), not reach(X).
	`)
	// Addition below the negation deletes above it: c becomes reached.
	res := step(t, rs, inc, atoms(t, "e(b, c)"), nil)
	if len(res.Changed["unreached"].Deleted) != 1 {
		t.Fatalf("adding an edge should delete one unreached tuple: %+v", res.Changed)
	}
	// Deletion below the negation adds above it: b and c fall out of reach.
	res = step(t, rs, inc, nil, atoms(t, "e(a, b)"))
	if len(res.Changed["unreached"].Added) != 2 {
		t.Fatalf("deleting the bridge should add two unreached tuples: %+v", res.Changed)
	}
	step(t, rs, inc, atoms(t, "e(a, c)"), nil)
	step(t, rs, inc, nil, atoms(t, "node(b)"))
}

func TestIncrementalAssertRetractNoop(t *testing.T) {
	rs, inc := newRefState(t, `
		e(a, b). e(b, c).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
		dead(X) :- node(X), not live(X).
		node(n1). live(n1).
	`)
	wantModel := inc.Model().String()
	wantCounts := inc.Counts()
	for _, fact := range []string{"e(c, d)", "node(n2)", "live(n1)", "e(a, b)"} {
		step(t, rs, inc, atoms(t, fact), nil)
		step(t, rs, inc, nil, atoms(t, fact))
		if got := inc.Model().String(); got != wantModel {
			t.Fatalf("assert+retract %s is not a no-op\ngot:\n%s\nwant:\n%s", fact, got, wantModel)
		}
		if got := inc.Counts(); !reflect.DeepEqual(got, wantCounts) {
			t.Fatalf("assert+retract %s drifted counts: %v != %v", fact, got, wantCounts)
		}
	}
	// Within one delta, retracts apply before asserts: retracting an absent
	// atom is a no-op and the assert lands, so the pair nets to an assert.
	step(t, rs, inc, atoms(t, "e(z, z)"), atoms(t, "e(z, z)"))
	if !inc.Model().Contains(mustAtom(t, "e(z, z)")) {
		t.Fatal("same-delta retract+assert should net to an assert")
	}
	step(t, rs, inc, nil, atoms(t, "e(z, z)"))
	if got := inc.Model().String(); got != wantModel {
		t.Fatalf("state did not return to baseline:\n%s\nwant:\n%s", got, wantModel)
	}
}

func TestIncrementalBaseAndDerivedOverlap(t *testing.T) {
	rs, inc := newRefState(t, `
		e(a, b).
		tc(X, Y) :- e(X, Y).
		tc(a, b).
	`)
	if c, ok := inc.Count(mustAtom(t, "tc(a, b)")); !ok || c.Base != 1 || c.Derived != 1 {
		t.Fatalf("tc(a,b) counts = %+v, want base 1 derived 1", c)
	}
	// Retracting the base assertion keeps the tuple (still derived).
	res := step(t, rs, inc, nil, atoms(t, "tc(a, b)"))
	if len(res.Changed) != 0 {
		t.Fatalf("retracting a still-derived base fact changed membership: %+v", res.Changed)
	}
	// Now deleting the edge removes the derivation and the tuple.
	res = step(t, rs, inc, nil, atoms(t, "e(a, b)"))
	if len(res.Changed["tc"].Deleted) != 1 {
		t.Fatalf("tuple should be gone once base and derivations are: %+v", res.Changed)
	}
}

func TestIncrementalDuplicateBaseFacts(t *testing.T) {
	rs, inc := newRefState(t, `
		e(a, b). e(a, b).
		tc(X, Y) :- e(X, Y).
	`)
	if c, _ := inc.Count(mustAtom(t, "e(a, b)")); c.Base != 2 {
		t.Fatalf("duplicate fact base count = %d, want 2", c.Base)
	}
	// One retract leaves the other assertion standing.
	res := step(t, rs, inc, nil, atoms(t, "e(a, b)"))
	if len(res.Changed) != 0 {
		t.Fatalf("first retract of a doubly asserted fact changed membership: %+v", res.Changed)
	}
	res = step(t, rs, inc, nil, atoms(t, "e(a, b)"))
	if len(res.Changed["e"].Deleted) != 1 || len(res.Changed["tc"].Deleted) != 1 {
		t.Fatalf("second retract should delete e and tc: %+v", res.Changed)
	}
}

func TestIncrementalBuiltins(t *testing.T) {
	rs, inc := newRefState(t, `
		p(a). p(b).
		diff(X, Y) :- p(X), p(Y), X != Y.
		alias(X, Y) :- p(X), Y = X.
	`)
	step(t, rs, inc, atoms(t, "p(c)"), nil)
	step(t, rs, inc, nil, atoms(t, "p(a)"))
	step(t, rs, inc, nil, atoms(t, "p(b)"))
}

func TestIncrementalClone(t *testing.T) {
	rs, inc := newRefState(t, `
		e(a, b). e(b, c).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`)
	snapshot := inc.Model().String()
	clone := inc.Clone()
	step(t, rs, inc, atoms(t, "e(c, d)"), atoms(t, "e(a, b)"))
	if got := clone.Model().String(); got != snapshot {
		t.Fatalf("mutating the original leaked into the clone:\n%s\nvs\n%s", got, snapshot)
	}
	// The clone must still be maintainable on its own.
	if _, err := clone.ApplyDelta(atoms(t, "e(x, y)"), nil); err != nil {
		t.Fatalf("clone ApplyDelta: %v", err)
	}
}

// TestIncrementalRandomStorm drives random deltas over every structural
// shape (chains, cycles, negation, builtins) and cross-checks the model and
// counts against from-scratch evaluation after every step.
func TestIncrementalRandomStorm(t *testing.T) {
	programs := []string{
		`tc(X, Y) :- e(X, Y).
		 tc(X, Z) :- e(X, Y), tc(Y, Z).`,
		`tc(X, Y) :- e(X, Y).
		 tc(X, Z) :- tc(X, Y), tc(Y, Z).`,
		`reach(X) :- start(X).
		 reach(Y) :- reach(X), e(X, Y).
		 unreached(X) :- node(X), not reach(X).
		 node(a). node(b). node(c). node(d). start(a).`,
		`sg(X, X) :- node(X).
		 sg(X, Y) :- e(P, X), sg(P, Q), e(Q, Y).
		 node(a). node(b). node(c). node(d).`,
	}
	steps, seeds := 40, 4
	if testing.Short() {
		steps, seeds = 12, 2
	}
	consts := []string{"a", "b", "c", "d"}
	for pi, src := range programs {
		for seed := 0; seed < seeds; seed++ {
			pi, src, seed := pi, src, seed
			t.Run(fmt.Sprintf("program%d/seed%d", pi, seed), func(t *testing.T) {
				rs, inc := newRefState(t, src)
				r := rand.New(rand.NewSource(int64(100 + 10*pi + seed)))
				present := map[string]Atom{}
				for i := 0; i < steps; i++ {
					var adds, dels []Atom
					n := 1 + r.Intn(3)
					for j := 0; j < n; j++ {
						if len(present) > 0 && r.Intn(3) == 0 {
							// Delete a random currently asserted edge.
							keys := make([]string, 0, len(present))
							for k := range present {
								keys = append(keys, k)
							}
							sort.Strings(keys)
							k := keys[r.Intn(len(keys))]
							dels = append(dels, present[k])
							delete(present, k)
						} else {
							a := NewAtom("e",
								term.Const(consts[r.Intn(len(consts))]),
								term.Const(consts[r.Intn(len(consts))]))
							adds = append(adds, a)
							present[a.Key()] = a
						}
					}
					step(t, rs, inc, adds, dels)
				}
			})
		}
	}
}
