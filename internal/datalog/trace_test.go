package datalog

import (
	"context"
	"testing"

	"repro/internal/resource"
)

// TestEvalTraceLimited pins that the traced naive fixpoint honours the
// resource governor like the other entry points: a tight fact budget stops
// it with a limit error, and a cancelled context is noticed at a round
// boundary.
func TestEvalTraceLimited(t *testing.T) {
	p, err := Parse(`
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = EvalTraceLimited(context.Background(), p, nil, resource.Limits{MaxFacts: 4})
	if !resource.IsLimit(err) {
		t.Fatalf("MaxFacts=4: got %v, want a resource-limit error", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = EvalTraceLimited(ctx, p, nil, resource.Limits{})
	if !resource.IsLimit(err) {
		t.Fatalf("cancelled ctx: got %v, want a resource-limit error", err)
	}

	// Unbounded, the Limited variant agrees with EvalTrace.
	full, stages, err := EvalTraceLimited(context.Background(), p, nil, resource.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	plain, plainStages, err := EvalTrace(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != plain.Len() || len(stages) != len(plainStages) {
		t.Fatalf("limited (%d facts, %d stages) disagrees with EvalTrace (%d, %d)",
			full.Len(), len(stages), plain.Len(), len(plainStages))
	}
}
