// Package benchreport parses `go test -bench` output and renders the
// grouped markdown tables EXPERIMENTS.md is built from, so the committed
// numbers are regenerated rather than transcribed.
package benchreport

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string // full name without the Benchmark prefix and -N suffix
	Group       string // the part before the first '/', e.g. "BeliefModesScaling"
	Case        string // the part after the first '/', e.g. "n=100/mode=fir"
	Iterations  int64
	NsPerOp     float64
	BytesPerOp  int64 // -1 when absent
	AllocsPerOp int64 // -1 when absent
	// Metrics holds every other `<value> <unit>` pair on the line — the
	// custom b.ReportMetric units (e.g. "p50-read-ns", "hit-rate").
	Metrics map[string]float64 `json:",omitempty"`
}

// Parse reads benchmark lines from r, ignoring everything else.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the GOMAXPROCS suffix ("-8") if present.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			res.Group, res.Case = name[:i], name[i+1:]
		} else {
			res.Group, res.Case = name, ""
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// HumanNs renders a duration in ns as the nearest convenient unit.
func HumanNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// Render prints one markdown table per benchmark group, preserving input
// order within groups and ordering groups by first appearance.
func Render(results []Result) string {
	groups := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, ok := groups[r.Group]; !ok {
			order = append(order, r.Group)
		}
		groups[r.Group] = append(groups[r.Group], r)
	}
	var b strings.Builder
	for _, g := range order {
		fmt.Fprintf(&b, "### %s\n\n", g)
		rs := groups[g]
		withMem := false
		for _, r := range rs {
			if r.BytesPerOp >= 0 {
				withMem = true
			}
		}
		if withMem {
			b.WriteString("| case | time/op | B/op | allocs/op |\n|------|--------:|-----:|----------:|\n")
		} else {
			b.WriteString("| case | time/op |\n|------|--------:|\n")
		}
		for _, r := range rs {
			label := r.Case
			if label == "" {
				label = "-"
			}
			if withMem {
				fmt.Fprintf(&b, "| %s | %s | %d | %d |\n", label, HumanNs(r.NsPerOp), r.BytesPerOp, r.AllocsPerOp)
			} else {
				fmt.Fprintf(&b, "| %s | %s |\n", label, HumanNs(r.NsPerOp))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MetricRatios computes, within one group and for one metric (a custom
// ReportMetric unit, or "ns/op"), the ratio variant/baseline per case
// prefix: how many times larger the metric is for each dim value than for
// dim=base. Returned keys are "prefix|dim=val" ("dim=val" when the prefix
// is empty).
func MetricRatios(results []Result, group, dim, base, metric string) map[string]float64 {
	value := func(r Result) (float64, bool) {
		if metric == "ns/op" {
			return r.NsPerOp, true
		}
		v, ok := r.Metrics[metric]
		return v, ok
	}
	baseline := map[string]float64{}
	type variant struct {
		key string
		val float64
	}
	variants := map[string][]variant{}
	for _, r := range results {
		if r.Group != group {
			continue
		}
		v, ok := value(r)
		if !ok {
			continue
		}
		var prefix []string
		val := ""
		for _, p := range strings.Split(r.Case, "/") {
			if strings.HasPrefix(p, dim+"=") {
				val = strings.TrimPrefix(p, dim+"=")
			} else {
				prefix = append(prefix, p)
			}
		}
		k := strings.Join(prefix, "/")
		if val == base {
			baseline[k] = v
		} else if val != "" {
			key := dim + "=" + val
			if k != "" {
				key = k + "|" + key
			}
			variants[k] = append(variants[k], variant{key: key, val: v})
		}
	}
	out := map[string]float64{}
	for k, vs := range variants {
		b, ok := baseline[k]
		if !ok || b <= 0 {
			continue
		}
		for _, v := range vs {
			out[v.key] = v.val / b
		}
	}
	return out
}

// FilterCase returns the results whose Case contains component as one of
// its '/'-separated parts — e.g. component "facts=320" keeps exactly the
// cases of that size. Gates use it to pin a ratio assertion to the scale
// point where the compared arms are past their fixed costs.
func FilterCase(results []Result, component string) []Result {
	var out []Result
	for _, r := range results {
		for _, p := range strings.Split(r.Case, "/") {
			if p == component {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// Ratios computes, for groups whose cases share a parameter prefix and end
// with a distinguishing suffix (e.g. "n=64/eval=seminaive" vs
// "n=64/eval=naive"), the ratio table baseline/variant. The variant whose
// suffix equals base is the denominator.
func Ratios(results []Result, group, dim, base string) string {
	type key = string
	baseline := map[key]float64{}
	variants := map[key]map[string]float64{}
	var keys []key
	for _, r := range results {
		if r.Group != group {
			continue
		}
		parts := strings.Split(r.Case, "/")
		var prefix []string
		val := ""
		for _, p := range parts {
			if strings.HasPrefix(p, dim+"=") {
				val = strings.TrimPrefix(p, dim+"=")
			} else {
				prefix = append(prefix, p)
			}
		}
		k := strings.Join(prefix, "/")
		if val == base {
			if _, ok := baseline[k]; !ok {
				keys = append(keys, k)
			}
			baseline[k] = r.NsPerOp
			continue
		}
		if variants[k] == nil {
			variants[k] = map[string]float64{}
		}
		variants[k][val] = r.NsPerOp
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "ratios vs %s=%s in %s:\n", dim, base, group)
	for _, k := range keys {
		for val, ns := range variants[k] {
			if baseline[k] > 0 {
				fmt.Fprintf(&b, "  %s: %s=%s is %.1fx\n", k, dim, val, ns/baseline[k])
			}
		}
	}
	return b.String()
}
