package benchreport

import (
	"strings"
	"testing"
)

const sample = `
goos: linux
goarch: amd64
pkg: repro
BenchmarkFig2ViewAtU-8         	  150000	      7985 ns/op	    3456 B/op	      61 allocs/op
BenchmarkNaiveVsSemiNaive/n=64/eval=seminaive         	     166	   7211804 ns/op
BenchmarkNaiveVsSemiNaive/n=64/eval=naive             	      12	  93383271 ns/op
BenchmarkNaiveVsSemiNaive/n=128/eval=seminaive        	      33	  34433499 ns/op
BenchmarkNaiveVsSemiNaive/n=128/eval=naive            	       2	 907200058 ns/op
BenchmarkBeliefModesScaling/n=100/mode=fir            	   90000	     11740 ns/op	   10240 B/op	     120 allocs/op
PASS
ok  	repro	31.106s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("parsed %d results", len(rs))
	}
	first := rs[0]
	if first.Name != "Fig2ViewAtU" || first.Group != "Fig2ViewAtU" || first.Case != "" {
		t.Errorf("first = %+v", first)
	}
	if first.Iterations != 150000 || first.NsPerOp != 7985 || first.BytesPerOp != 3456 || first.AllocsPerOp != 61 {
		t.Errorf("first metrics = %+v", first)
	}
	semi := rs[1]
	if semi.Group != "NaiveVsSemiNaive" || semi.Case != "n=64/eval=seminaive" {
		t.Errorf("semi = %+v", semi)
	}
	if semi.BytesPerOp != -1 {
		t.Errorf("missing memory stats must be -1, got %d", semi.BytesPerOp)
	}
}

func TestHumanNs(t *testing.T) {
	cases := map[float64]string{
		500:    "500 ns",
		7985:   "8.0 µs",
		7.2e6:  "7.20 ms",
		9.99e9: "9.99 s",
	}
	for ns, want := range cases {
		if got := HumanNs(ns); got != want {
			t.Errorf("HumanNs(%v) = %q, want %q", ns, got, want)
		}
	}
}

func TestRender(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out := Render(rs)
	for _, want := range []string{
		"### Fig2ViewAtU",
		"### NaiveVsSemiNaive",
		"| n=64/eval=naive | 93.38 ms |",
		"| n=100/mode=fir | 11.7 µs | 10240 | 120 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Group order follows first appearance.
	if strings.Index(out, "Fig2ViewAtU") > strings.Index(out, "NaiveVsSemiNaive") {
		t.Error("group order not preserved")
	}
}

func TestRatios(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out := Ratios(rs, "NaiveVsSemiNaive", "eval", "seminaive")
	for _, want := range []string{"n=64: eval=naive is 12.9x", "n=128: eval=naive is 26.3x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Ratios missing %q:\n%s", want, out)
		}
	}
}

func TestParseTolerantOfGarbage(t *testing.T) {
	rs, err := Parse(strings.NewReader("Benchmark\nBenchmarkX 12 notanumber ns/op\nBenchmarkY abc 5 ns/op\nnothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("garbage should parse to nothing, got %v", rs)
	}
}

func TestFilterCase(t *testing.T) {
	results := []Result{
		{Group: "G", Case: "n=1/kind=a"},
		{Group: "G", Case: "n=12/kind=a"},
		{Group: "G", Case: "n=1/kind=b"},
	}
	got := FilterCase(results, "n=1")
	if len(got) != 2 || got[0].Case != "n=1/kind=a" || got[1].Case != "n=1/kind=b" {
		t.Fatalf("FilterCase must match whole components only: %+v", got)
	}
	if len(FilterCase(results, "n=")) != 0 {
		t.Fatal("partial component must not match")
	}
}
