// Package lattice implements partially ordered sets of security labels as
// used by the Bell-LaPadula model and by MultiLog's Λ component.
//
// A Poset is built from a set of declared labels (the paper's l-atoms,
// level(s)) and a covering relation (the paper's h-atoms, order(l,h), which
// assert that l is immediately below h). Dominance is the reflexive
// transitive closure of the covering relation. A Lattice is a Poset in which
// every pair of labels has a least upper bound and a greatest lower bound.
//
// The paper drops the category component of access classes "without the loss
// of any generality" (§2); we keep that generality available through the
// Product constructor, which builds the classical level×category-set lattice.
package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Label names a security access class. Labels are opaque: their ordering is
// given entirely by the Poset they belong to, never by string comparison.
type Label string

// Bottom is returned by methods that need a sentinel for "no label". It is
// never a valid member of a Poset.
const NoLabel Label = ""

// Poset is a finite partially ordered set of labels. The zero value is an
// empty poset ready for Add/AddOrder; most callers use a builder from this
// package or construct one from MultiLog's Λ clauses.
type Poset struct {
	labels []Label           // insertion order, for deterministic iteration
	index  map[Label]int     // label -> position in labels
	covers map[Label][]Label // l -> labels that immediately cover l (order(l,h))
	// dom[i] is the set of label indices dominated by label i, as a bitset
	// over positions in labels; dom is rebuilt lazily after mutation.
	dom   []bitset
	dirty bool
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(other bitset) (changed bool) {
	for i := range b {
		old := b[i]
		b[i] |= other[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

// New returns an empty poset.
func New() *Poset {
	return &Poset{index: make(map[Label]int), covers: make(map[Label][]Label)}
}

// Add declares a label (the paper's level(s)). Adding an existing label is a
// no-op, so posets can be built straight from a fact base with duplicates.
func (p *Poset) Add(l Label) {
	if l == NoLabel {
		return
	}
	if _, ok := p.index[l]; ok {
		return
	}
	p.index[l] = len(p.labels)
	p.labels = append(p.labels, l)
	p.dirty = true
}

// AddOrder asserts the covering fact order(lo, hi): lo is immediately below
// hi. Both labels are declared implicitly. AddOrder returns an error if
// lo == hi, since a label cannot cover itself.
func (p *Poset) AddOrder(lo, hi Label) error {
	if lo == hi {
		return fmt.Errorf("lattice: order(%s, %s): a label cannot cover itself", lo, hi)
	}
	if lo == NoLabel || hi == NoLabel {
		return fmt.Errorf("lattice: order with empty label")
	}
	p.Add(lo)
	p.Add(hi)
	for _, h := range p.covers[lo] {
		if h == hi {
			return nil
		}
	}
	p.covers[lo] = append(p.covers[lo], hi)
	p.dirty = true
	return nil
}

// Has reports whether l is a declared label.
func (p *Poset) Has(l Label) bool {
	_, ok := p.index[l]
	return ok
}

// Labels returns the declared labels in insertion order. The returned slice
// must not be modified.
func (p *Poset) Labels() []Label { return p.labels }

// Len returns the number of declared labels.
func (p *Poset) Len() int { return len(p.labels) }

// rebuild recomputes the dominance closure. It reports an error if the
// covering relation is cyclic (which would make ⪯ not a partial order).
func (p *Poset) rebuild() error {
	n := len(p.labels)
	dom := make([]bitset, n)
	for i := range dom {
		dom[i] = newBitset(n)
		dom[i].set(i) // reflexive
	}
	// Warshall-style closure over the covering edges hi -> dominates lo.
	// Iterate until no change; with a cyclic covering relation two distinct
	// labels end up dominating each other, which we detect below.
	for changed := true; changed; {
		changed = false
		for lo, his := range p.covers {
			li := p.index[lo]
			for _, hi := range his {
				hi := p.index[hi]
				if dom[hi].or(dom[li]) {
					changed = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && dom[i].get(j) && dom[j].get(i) {
				return fmt.Errorf("lattice: covering relation is cyclic: %s and %s dominate each other",
					p.labels[i], p.labels[j])
			}
		}
	}
	p.dom = dom
	p.dirty = false
	return nil
}

// Validate checks that the covering relation induces a partial order
// (acyclicity; reflexivity and transitivity hold by construction).
func (p *Poset) Validate() error {
	if p.dirty {
		return p.rebuild()
	}
	return nil
}

func (p *Poset) ensure() {
	if p.dirty {
		if err := p.rebuild(); err != nil {
			panic(err) //vet:allow nopanic -- callers must Validate after mutation; see Dominates
		}
	}
}

// Dominates reports hi ⪰ lo: hi's access class is at least lo's.
// Dominates panics if the poset was mutated into a cyclic state without an
// intervening Validate; builders in this package always validate.
func (p *Poset) Dominates(hi, lo Label) bool {
	hiI, ok := p.index[hi]
	if !ok {
		return false
	}
	loI, ok := p.index[lo]
	if !ok {
		return false
	}
	p.ensure()
	return p.dom[hiI].get(loI)
}

// StrictlyDominates reports hi ≻ lo.
func (p *Poset) StrictlyDominates(hi, lo Label) bool {
	return hi != lo && p.Dominates(hi, lo)
}

// Comparable reports whether a and b are ordered either way.
func (p *Poset) Comparable(a, b Label) bool {
	return p.Dominates(a, b) || p.Dominates(b, a)
}

// Covers returns the labels immediately above l, sorted for determinism.
func (p *Poset) Covers(l Label) []Label {
	out := append([]Label(nil), p.covers[l]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoverEdges returns all covering facts order(lo,hi) in deterministic order.
func (p *Poset) CoverEdges() [][2]Label {
	var out [][2]Label
	for _, lo := range p.labels {
		for _, hi := range p.Covers(lo) {
			out = append(out, [2]Label{lo, hi})
		}
	}
	return out
}

// DownSet returns every label dominated by l (including l), in insertion
// order. It is the set of classifications a subject cleared at l may read.
func (p *Poset) DownSet(l Label) []Label {
	li, ok := p.index[l]
	if !ok {
		return nil
	}
	p.ensure()
	var out []Label
	for j, m := range p.labels {
		if p.dom[li].get(j) {
			out = append(out, m)
		}
	}
	return out
}

// UpSet returns every label that dominates l (including l).
func (p *Poset) UpSet(l Label) []Label {
	lj, ok := p.index[l]
	if !ok {
		return nil
	}
	p.ensure()
	var out []Label
	for i, m := range p.labels {
		if p.dom[i].get(lj) {
			out = append(out, m)
		}
	}
	return out
}

// Lub returns the least upper bound of a and b, or NoLabel and false when no
// unique least upper bound exists (the poset is then not a lattice on this
// pair). The paper writes lub{...} when defining tuple classes (Def 2.2).
func (p *Poset) Lub(a, b Label) (Label, bool) {
	ai, ok := p.index[a]
	if !ok {
		return NoLabel, false
	}
	bi, ok := p.index[b]
	if !ok {
		return NoLabel, false
	}
	p.ensure()
	// Upper bounds: labels u with dom[u] ⊇ {a, b}.
	var uppers []int
	for i := range p.labels {
		if p.dom[i].get(ai) && p.dom[i].get(bi) {
			uppers = append(uppers, i)
		}
	}
	return p.leastOf(uppers)
}

// Glb returns the greatest lower bound of a and b, or NoLabel and false when
// none exists.
func (p *Poset) Glb(a, b Label) (Label, bool) {
	ai, ok := p.index[a]
	if !ok {
		return NoLabel, false
	}
	bi, ok := p.index[b]
	if !ok {
		return NoLabel, false
	}
	p.ensure()
	var lowers []int
	for i := range p.labels {
		if p.dom[ai].get(i) && p.dom[bi].get(i) {
			lowers = append(lowers, i)
		}
	}
	return p.greatestOf(lowers)
}

// LubAll folds Lub over labels; it returns false on an empty slice or when
// any intermediate lub is undefined.
func (p *Poset) LubAll(labels []Label) (Label, bool) {
	if len(labels) == 0 {
		return NoLabel, false
	}
	acc := labels[0]
	for _, l := range labels[1:] {
		var ok bool
		acc, ok = p.Lub(acc, l)
		if !ok {
			return NoLabel, false
		}
	}
	return acc, true
}

// leastOf returns the unique member of candidate indices dominated by all
// other candidates.
func (p *Poset) leastOf(cands []int) (Label, bool) {
	for _, c := range cands {
		least := true
		for _, d := range cands {
			if !p.dom[d].get(c) {
				least = false
				break
			}
		}
		if least {
			return p.labels[c], true
		}
	}
	return NoLabel, false
}

func (p *Poset) greatestOf(cands []int) (Label, bool) {
	for _, c := range cands {
		greatest := true
		for _, d := range cands {
			if !p.dom[c].get(d) {
				greatest = false
				break
			}
		}
		if greatest {
			return p.labels[c], true
		}
	}
	return NoLabel, false
}

// IsLattice reports whether every pair of labels has both a lub and a glb.
func (p *Poset) IsLattice() bool {
	if err := p.Validate(); err != nil {
		return false
	}
	for _, a := range p.labels {
		for _, b := range p.labels {
			if _, ok := p.Lub(a, b); !ok {
				return false
			}
			if _, ok := p.Glb(a, b); !ok {
				return false
			}
		}
	}
	return true
}

// IsTotalOrder reports whether every pair of labels is comparable.
func (p *Poset) IsTotalOrder() bool {
	if err := p.Validate(); err != nil {
		return false
	}
	for i, a := range p.labels {
		for _, b := range p.labels[i+1:] {
			if !p.Comparable(a, b) {
				return false
			}
		}
	}
	return true
}

// TopoOrder returns the labels bottom-up: every label appears after all
// labels it strictly dominates. MultiLog's level-stratified evaluation
// computes beliefs in this order.
func (p *Poset) TopoOrder() []Label {
	p.ensure()
	type ranked struct {
		l    Label
		rank int // number of labels strictly dominated
		pos  int
	}
	rs := make([]ranked, len(p.labels))
	for i, l := range p.labels {
		count := 0
		for j := range p.labels {
			if j != i && p.dom[i].get(j) {
				count++
			}
		}
		rs[i] = ranked{l, count, i}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].pos < rs[j].pos
	})
	out := make([]Label, len(rs))
	for i, r := range rs {
		out[i] = r.l
	}
	return out
}

// Maximal returns the labels not strictly dominated by any other label.
func (p *Poset) Maximal() []Label {
	p.ensure()
	var out []Label
	for j, l := range p.labels {
		top := true
		for i := range p.labels {
			if i != j && p.dom[i].get(j) {
				top = false
				break
			}
		}
		if top {
			out = append(out, l)
		}
	}
	return out
}

// Minimal returns the labels that strictly dominate no other label.
func (p *Poset) Minimal() []Label {
	p.ensure()
	var out []Label
	for i, l := range p.labels {
		bottom := true
		for j := range p.labels {
			if i != j && p.dom[i].get(j) {
				bottom = false
				break
			}
		}
		if bottom {
			out = append(out, l)
		}
	}
	return out
}

// MaximalAmong returns the members of set that are not strictly dominated by
// another member. It implements the "retain the highest classification"
// selection used by the cautious belief mode; with an incomparable set the
// result has several members — the multiple-model situation the paper notes.
func (p *Poset) MaximalAmong(set []Label) []Label {
	var out []Label
	for _, a := range set {
		maximal := true
		for _, b := range set {
			if p.StrictlyDominates(b, a) {
				maximal = false
				break
			}
		}
		if maximal && !containsLabel(out, a) {
			out = append(out, a)
		}
	}
	return out
}

func containsLabel(ls []Label, l Label) bool {
	for _, m := range ls {
		if m == l {
			return true
		}
	}
	return false
}

// String renders the poset as its covering facts, e.g. "u<c, c<s".
func (p *Poset) String() string {
	var parts []string
	for _, e := range p.CoverEdges() {
		parts = append(parts, fmt.Sprintf("%s<%s", e[0], e[1]))
	}
	if len(parts) == 0 {
		var ls []string
		for _, l := range p.labels {
			ls = append(ls, string(l))
		}
		return "{" + strings.Join(ls, ", ") + "}"
	}
	return strings.Join(parts, ", ")
}

// Clone returns a deep copy of the poset.
func (p *Poset) Clone() *Poset {
	q := New()
	for _, l := range p.labels {
		q.Add(l)
	}
	for lo, his := range p.covers {
		for _, hi := range his {
			q.covers[lo] = append(q.covers[lo], hi)
		}
	}
	q.dirty = true
	return q
}
