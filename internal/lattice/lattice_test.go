package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMilitaryChain(t *testing.T) {
	p := Military()
	cases := []struct {
		hi, lo Label
		want   bool
	}{
		{TopSecret, Secret, true},
		{Secret, Classified, true},
		{Classified, Unclassified, true},
		{TopSecret, Unclassified, true},
		{Unclassified, TopSecret, false},
		{Secret, Secret, true},
		{Unclassified, Unclassified, true},
	}
	for _, c := range cases {
		if got := p.Dominates(c.hi, c.lo); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.hi, c.lo, got, c.want)
		}
	}
	if !p.IsTotalOrder() {
		t.Error("Military() should be a total order")
	}
	if !p.IsLattice() {
		t.Error("Military() should be a lattice")
	}
}

func TestStrictDominance(t *testing.T) {
	p := Military()
	if p.StrictlyDominates(Secret, Secret) {
		t.Error("a label must not strictly dominate itself")
	}
	if !p.StrictlyDominates(Secret, Unclassified) {
		t.Error("s should strictly dominate u")
	}
}

func TestUnknownLabels(t *testing.T) {
	p := Military()
	if p.Dominates("bogus", Unclassified) || p.Dominates(Secret, "bogus") {
		t.Error("dominance must be false for undeclared labels")
	}
	if _, ok := p.Lub("bogus", Secret); ok {
		t.Error("Lub with an undeclared label must fail")
	}
}

func TestDiamondIncomparability(t *testing.T) {
	p, err := Diamond("lo", "a", "b", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if p.Comparable("a", "b") {
		t.Error("diamond arms must be incomparable")
	}
	if l, ok := p.Lub("a", "b"); !ok || l != "hi" {
		t.Errorf("Lub(a,b) = %v,%v, want hi,true", l, ok)
	}
	if l, ok := p.Glb("a", "b"); !ok || l != "lo" {
		t.Errorf("Glb(a,b) = %v,%v, want lo,true", l, ok)
	}
	if p.IsTotalOrder() {
		t.Error("diamond is not a total order")
	}
	if !p.IsLattice() {
		t.Error("diamond is a lattice")
	}
}

func TestCycleDetection(t *testing.T) {
	p := New()
	mustOrder(t, p, "a", "b")
	mustOrder(t, p, "b", "c")
	mustOrder(t, p, "c", "a")
	if err := p.Validate(); err == nil {
		t.Error("cyclic covering relation must fail validation")
	}
}

func TestSelfCoverRejected(t *testing.T) {
	p := New()
	if err := p.AddOrder("a", "a"); err == nil {
		t.Error("order(a,a) must be rejected")
	}
}

func TestLubAll(t *testing.T) {
	p := Military()
	got, ok := p.LubAll([]Label{Unclassified, Secret, Classified})
	if !ok || got != Secret {
		t.Errorf("LubAll(u,s,c) = %v,%v, want s,true", got, ok)
	}
	if _, ok := p.LubAll(nil); ok {
		t.Error("LubAll(nil) must fail")
	}
}

func TestDownUpSets(t *testing.T) {
	p := Military()
	down := p.DownSet(Classified)
	if len(down) != 2 || !containsLabel(down, Unclassified) || !containsLabel(down, Classified) {
		t.Errorf("DownSet(c) = %v, want {u,c}", down)
	}
	up := p.UpSet(Classified)
	if len(up) != 3 || !containsLabel(up, Secret) || !containsLabel(up, TopSecret) {
		t.Errorf("UpSet(c) = %v, want {c,s,t}", up)
	}
}

func TestTopoOrderRespectsDominance(t *testing.T) {
	p, err := Diamond("lo", "a", "b", "hi")
	if err != nil {
		t.Fatal(err)
	}
	order := p.TopoOrder()
	pos := map[Label]int{}
	for i, l := range order {
		pos[l] = i
	}
	for _, hi := range p.Labels() {
		for _, lo := range p.Labels() {
			if p.StrictlyDominates(hi, lo) && pos[hi] < pos[lo] {
				t.Errorf("topo order places %s before %s it dominates", hi, lo)
			}
		}
	}
}

func TestMaximalMinimal(t *testing.T) {
	p, _ := Diamond("lo", "a", "b", "hi")
	if m := p.Maximal(); len(m) != 1 || m[0] != "hi" {
		t.Errorf("Maximal = %v, want [hi]", m)
	}
	if m := p.Minimal(); len(m) != 1 || m[0] != "lo" {
		t.Errorf("Minimal = %v, want [lo]", m)
	}
}

func TestMaximalAmong(t *testing.T) {
	p, _ := Diamond("lo", "a", "b", "hi")
	got := p.MaximalAmong([]Label{"lo", "a", "b"})
	if len(got) != 2 || !containsLabel(got, "a") || !containsLabel(got, "b") {
		t.Errorf("MaximalAmong(lo,a,b) = %v, want {a,b}", got)
	}
	got = p.MaximalAmong([]Label{"lo", "a", "hi"})
	if len(got) != 1 || got[0] != "hi" {
		t.Errorf("MaximalAmong(lo,a,hi) = %v, want {hi}", got)
	}
	got = p.MaximalAmong([]Label{"a", "a"})
	if len(got) != 1 {
		t.Errorf("MaximalAmong must deduplicate, got %v", got)
	}
}

func TestProductLattice(t *testing.T) {
	p, err := Product(UCS(), []string{"nato", "army"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3*4 {
		t.Fatalf("product of 3 levels × 2 categories should have 12 classes, got %d", p.Len())
	}
	if !p.Dominates("s{army,nato}", "u{army}") {
		t.Error("s{army,nato} must dominate u{army}")
	}
	if p.Comparable("s{army}", "c{nato}") {
		t.Error("s{army} and c{nato} must be incomparable")
	}
	if p.Comparable("u{army}", "u{nato}") {
		t.Error("same level, disjoint categories must be incomparable")
	}
	if !p.IsLattice() {
		t.Error("the product construction must yield a lattice")
	}
	if l, ok := p.Lub("u{army}", "u{nato}"); !ok || l != "u{army,nato}" {
		t.Errorf("Lub(u{army}, u{nato}) = %v,%v", l, ok)
	}
}

func TestProductTooManyCategories(t *testing.T) {
	cats := make([]string, 17)
	for i := range cats {
		cats[i] = string(rune('a' + i))
	}
	if _, err := Product(UCS(), cats); err == nil {
		t.Error("Product must reject more than 16 categories")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Military()
	q := p.Clone()
	mustOrder(t, q, TopSecret, "cosmic")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Has("cosmic") {
		t.Error("mutating a clone must not affect the original")
	}
	if !q.Dominates("cosmic", Unclassified) {
		t.Error("clone lost dominance facts")
	}
}

func TestStringRendering(t *testing.T) {
	p := UCS()
	if s := p.String(); s != "u<c, c<s" {
		t.Errorf("String() = %q", s)
	}
	q := New()
	q.Add("solo")
	if s := q.String(); s != "{solo}" {
		t.Errorf("String() = %q", s)
	}
}

// randomPoset builds a random DAG poset over n labels; edges only go from
// lower to higher index so acyclicity is guaranteed.
func randomPoset(r *rand.Rand, n int) *Poset {
	p := New()
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(rune('a'+i%26)) + Label(rune('0'+i/26))
		p.Add(labels[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				p.AddOrder(labels[i], labels[j])
			}
		}
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestQuickDominanceIsPartialOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPoset(r, 2+r.Intn(10))
		ls := p.Labels()
		// Reflexive.
		for _, a := range ls {
			if !p.Dominates(a, a) {
				return false
			}
		}
		// Antisymmetric and transitive.
		for _, a := range ls {
			for _, b := range ls {
				if a != b && p.Dominates(a, b) && p.Dominates(b, a) {
					return false
				}
				for _, c := range ls {
					if p.Dominates(a, b) && p.Dominates(b, c) && !p.Dominates(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLubIsLeastUpperBound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPoset(r, 2+r.Intn(8))
		ls := p.Labels()
		for _, a := range ls {
			for _, b := range ls {
				l, ok := p.Lub(a, b)
				if !ok {
					continue // not every random poset is a lattice
				}
				if !p.Dominates(l, a) || !p.Dominates(l, b) {
					return false
				}
				for _, u := range ls {
					if p.Dominates(u, a) && p.Dominates(u, b) && !p.Dominates(u, l) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTopoOrderComplete(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPoset(r, 1+r.Intn(12))
		order := p.TopoOrder()
		if len(order) != p.Len() {
			return false
		}
		seen := map[Label]bool{}
		for i, early := range order {
			if seen[early] {
				return false
			}
			seen[early] = true
			for _, late := range order[i+1:] {
				if p.StrictlyDominates(early, late) {
					// Bottom-up order: a label must come after everything
					// it strictly dominates.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func mustOrder(t *testing.T, p *Poset, lo, hi Label) {
	t.Helper()
	if err := p.AddOrder(lo, hi); err != nil {
		t.Fatalf("AddOrder(%s,%s): %v", lo, hi, err)
	}
}

func TestProductWithoutCategoriesIsLevels(t *testing.T) {
	p, err := Product(UCS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("product with no categories should equal the level chain, got %d", p.Len())
	}
	if !p.Dominates(Secret, Unclassified) {
		t.Error("ordering lost")
	}
}

func TestMaximalAmongEmpty(t *testing.T) {
	p := UCS()
	if got := p.MaximalAmong(nil); len(got) != 0 {
		t.Errorf("MaximalAmong(nil) = %v", got)
	}
}

func TestGlbOnChain(t *testing.T) {
	p := Military()
	if g, ok := p.Glb(Secret, Classified); !ok || g != Classified {
		t.Errorf("Glb(s, c) = %v, %v", g, ok)
	}
	if _, ok := p.Glb("zz", Secret); ok {
		t.Error("Glb with unknown label must fail")
	}
}
