package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Canonical military hierarchy levels used throughout the paper's examples:
// Unclassified < Classified < Secret < TopSecret (U < C < S < T, §2 fn 1).
const (
	Unclassified Label = "u"
	Classified   Label = "c"
	Secret       Label = "s"
	TopSecret    Label = "t"
)

// Military returns the four-level total order U < C < S < T of §2.
func Military() *Poset {
	p, err := Chain(Unclassified, Classified, Secret, TopSecret)
	if err != nil {
		panic(err) //vet:allow nopanic -- static input; cannot fail
	}
	return p
}

// UCS returns the three-level chain U < C < S used by the Mission example.
func UCS() *Poset {
	p, err := Chain(Unclassified, Classified, Secret)
	if err != nil {
		panic(err) //vet:allow nopanic -- static input; cannot fail
	}
	return p
}

// Chain builds the total order labels[0] < labels[1] < ... .
func Chain(labels ...Label) (*Poset, error) {
	p := New()
	for _, l := range labels {
		p.Add(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		if err := p.AddOrder(labels[i], labels[i+1]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Diamond builds the four-point lattice bottom < {left, right} < top, the
// smallest poset exhibiting incomparable labels — the multiple-inheritance
// situation §3.1 warns about for the cautious mode.
func Diamond(bottom, left, right, top Label) (*Poset, error) {
	p := New()
	for _, pair := range [][2]Label{{bottom, left}, {bottom, right}, {left, top}, {right, top}} {
		if err := p.AddOrder(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Product builds the access-class lattice of §2 in full generality: labels
// are pairs of a hierarchy level and a set of categories, ordered by
// (l1,C1) ⪰ (l2,C2) iff l1 ⪰ l2 and C1 ⊇ C2. Label names are rendered as
// "level{cat1,cat2}" with categories sorted.
func Product(levels *Poset, categories []string) (*Poset, error) {
	if err := levels.Validate(); err != nil {
		return nil, err
	}
	cats := append([]string(nil), categories...)
	sort.Strings(cats)
	type class struct {
		level Label
		cats  uint // bitmask over cats
	}
	if len(cats) > 16 {
		return nil, fmt.Errorf("lattice: product with %d categories exceeds the supported 16", len(cats))
	}
	var classes []class
	for _, l := range levels.Labels() {
		for mask := uint(0); mask < 1<<uint(len(cats)); mask++ {
			classes = append(classes, class{l, mask})
		}
	}
	name := func(c class) Label {
		if c.cats == 0 {
			return c.level
		}
		var sel []string
		for i, cat := range cats {
			if c.cats&(1<<uint(i)) != 0 {
				sel = append(sel, cat)
			}
		}
		return Label(fmt.Sprintf("%s{%s}", c.level, strings.Join(sel, ",")))
	}
	p := New()
	for _, c := range classes {
		p.Add(name(c))
	}
	// Covering edges: raise the level by one cover, or add one category.
	for _, c := range classes {
		for _, hi := range levels.Covers(c.level) {
			if err := p.AddOrder(name(c), name(class{hi, c.cats})); err != nil {
				return nil, err
			}
		}
		for i := range cats {
			bit := uint(1) << uint(i)
			if c.cats&bit == 0 {
				if err := p.AddOrder(name(c), name(class{c.level, c.cats | bit})); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
