package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Summary is the stable per-predicate product of the whole-program
// analyses over a classical Datalog program. It is the contract between
// the analyses and their consumers: the lint passes format findings from
// it, and a compiled engine's plan cache keys on Adornments to decide
// which join plans to build per predicate (ROADMAP item 1). Fields are
// only ever added, never renamed or removed.
type Summary struct {
	// Preds maps every non-builtin predicate (IDB and EDB) to its info.
	Preds map[string]*PredInfo
	// Converged is false only when a fixpoint hit its application budget;
	// the summary is then a sound partial result but may miss reachable
	// adornments.
	Converged bool
}

// PredInfo is the analysis result for one predicate.
type PredInfo struct {
	Name  string
	Arity int
	// EDB reports the predicate is defined by facts only (no proper rule).
	EDB bool
	// Facts counts the predicate's fact clauses; Rules its proper rules.
	Facts int
	Rules int
	// Adornments lists every reachable b/f binding pattern, sorted. An
	// empty list means the predicate is not reachable from any seed goal
	// (the plan cache needs no plan for it).
	Adornments []string
	// Recursive reports the predicate depends on itself (any cycle).
	Recursive bool
	// NonlinearRecursion reports some rule for this predicate has two or
	// more body literals inside the predicate's own recursive component.
	NonlinearRecursion bool
	// UnboundRecursion reports the predicate is recursive and reachable
	// with the all-free adornment: top-down evaluation gets no bound
	// argument to drive magic sets or index selection, so such calls
	// degrade to a full bottom-up fixpoint.
	UnboundRecursion bool
	// Floundering lists body literals that are negated (or '!=') and can
	// be reached with an unbound variable under some reachable head
	// adornment, even after the SIPS reordering.
	Floundering []FlounderSite
	// SizeEstimate is the cost analysis' first-order relation-size
	// estimate (see AnalyzeCost); 0 when the cost analysis did not run.
	SizeEstimate int64
}

// FlounderSite locates one floundering literal.
type FlounderSite struct {
	Clause    int              // index into Program.Clauses
	Pos       datalog.Position // the clause's position
	Literal   string           // the literal that flounders, rendered
	Adornment string           // head adornment under which it flounders
}

// Pred returns the info for name, or an empty placeholder so callers can
// chain field accesses without nil checks.
func (s *Summary) Pred(name string) *PredInfo {
	if p, ok := s.Preds[name]; ok {
		return p
	}
	return &PredInfo{Name: name}
}

// PredNames returns the summarized predicates, sorted.
func (s *Summary) PredNames() []string {
	names := make([]string, 0, len(s.Preds))
	for n := range s.Preds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the summary one predicate per line, for debugging and
// golden tests.
func (s *Summary) String() string {
	var b strings.Builder
	for _, n := range s.PredNames() {
		p := s.Preds[n]
		kind := "idb"
		if p.EDB {
			kind = "edb"
		}
		fmt.Fprintf(&b, "%s/%d %s adorn=[%s]", p.Name, p.Arity, kind, strings.Join(p.Adornments, " "))
		if p.Recursive {
			b.WriteString(" rec")
		}
		if p.NonlinearRecursion {
			b.WriteString(" nonlinear")
		}
		if p.UnboundRecursion {
			b.WriteString(" unbound-rec")
		}
		if len(p.Floundering) > 0 {
			fmt.Fprintf(&b, " flounder=%d", len(p.Floundering))
		}
		if p.SizeEstimate > 0 {
			fmt.Fprintf(&b, " size~%d", p.SizeEstimate)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
