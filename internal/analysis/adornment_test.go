package analysis

import (
	"reflect"
	"testing"

	"repro/internal/datalog"
	"repro/internal/multilog"
)

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestAdornFromQuery(t *testing.T) {
	p := mustParse(t, `
		edge(a, b). edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
		?- tc(a, W).
	`)
	s := Datalog(p)
	if !s.Converged {
		t.Fatal("adornment fixpoint did not converge")
	}
	if got := s.Pred("tc").Adornments; !reflect.DeepEqual(got, []string{"bf"}) {
		t.Errorf("tc adornments = %v, want [bf]", got)
	}
	// edge is called with X bound (from the head) in both rules.
	if got := s.Pred("edge").Adornments; !reflect.DeepEqual(got, []string{"bf"}) {
		t.Errorf("edge adornments = %v, want [bf]", got)
	}
	tc := s.Pred("tc")
	if !tc.Recursive || tc.NonlinearRecursion || tc.UnboundRecursion {
		t.Errorf("tc flags = rec:%v nonlinear:%v unbound:%v, want rec only",
			tc.Recursive, tc.NonlinearRecursion, tc.UnboundRecursion)
	}
	if edge := s.Pred("edge"); !edge.EDB || edge.Facts != 2 {
		t.Errorf("edge should be EDB with 2 facts, got %+v", edge)
	}
}

func TestAdornMultipleAdornments(t *testing.T) {
	p := mustParse(t, `
		edge(a, b).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
		?- tc(a, W).
		?- tc(U, V).
	`)
	s := Adorn(p, p.Queries)
	if got := s.Pred("tc").Adornments; !reflect.DeepEqual(got, []string{"bf", "ff"}) {
		t.Errorf("tc adornments = %v, want [bf ff]", got)
	}
	if !s.Pred("tc").UnboundRecursion {
		t.Error("tc reachable all-free and recursive: UnboundRecursion should be set")
	}
}

// TestAdornNoSeeds pins the bottom-up posture: with no queries every
// predicate is assumed demanded all-free.
func TestAdornNoSeeds(t *testing.T) {
	p := mustParse(t, `
		edge(a, b).
		tc(X, Y) :- edge(X, Y).
	`)
	s := Adorn(p, nil)
	if got := s.Pred("tc").Adornments; !reflect.DeepEqual(got, []string{"ff"}) {
		t.Errorf("tc adornments = %v, want [ff]", got)
	}
}

// TestAdornNonlinear pins nonlinear-recursion detection on the classic
// doubled transitive closure.
func TestAdornNonlinear(t *testing.T) {
	p := mustParse(t, `
		edge(a, b).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), tc(Y, Z).
		?- tc(a, W).
	`)
	s := Adorn(p, p.Queries)
	if !s.Pred("tc").NonlinearRecursion {
		t.Error("doubled tc rule should be flagged nonlinear")
	}
}

// TestAdornFloundering pins the floundering field on an unsafe program:
// not reached(Y) with Y unbound flounders even after OrderBody's
// deferral, because nothing in the body binds Y.
func TestAdornFloundering(t *testing.T) {
	p := mustParse(t, `
		node(a).
		isolated(X) :- node(X), not linked(X, Y).
		linked(a, b).
		?- isolated(a).
	`)
	s := Adorn(p, p.Queries)
	fl := s.Pred("isolated").Floundering
	if len(fl) != 1 {
		t.Fatalf("want 1 flounder site, got %v", fl)
	}
	if fl[0].Adornment != "b" || fl[0].Literal != "not linked(X, Y)" {
		t.Errorf("flounder site = %+v", fl[0])
	}
}

// TestSummaryOnFigure12Reduction pins the stable Summary API on the
// paper's Figure 10 database D1 reduced at user level c (the Figure 12
// axioms + τ translation): the plan-cache contract is that the Example
// 5.2 query demands the optimistic belief at c with adornment bbbf,
// which flows to the dominated rel relations and the classical support
// q, while the s-level relation stays out of the demanded cone.
func TestSummaryOnFigure12Reduction(t *testing.T) {
	red, err := multilog.Reduce(multilog.D1(), "c")
	if err != nil {
		t.Fatal(err)
	}
	// The reduction of r10 (?- c[p(k: a -R-> v)] << opt): bel args are
	// (Key, Attr, Value, Class).
	seed, err := datalog.ParseAtom("mlbel_p_c_opt(k, a, v, R)")
	if err != nil {
		t.Fatal(err)
	}
	s := Adorn(red.Program, []datalog.Atom{seed})
	if !s.Converged {
		t.Fatal("fixpoint did not converge")
	}
	want := map[string][]string{
		"mlbel_p_c_opt": {"bbbf"}, // the query itself
		"mlrel_p_c":     {"bbbf"}, // a5 at level c
		"mlrel_p_u":     {"bbbf"}, // a5 at the dominated level u
		"q":             {"b"},    // r7's classical support, fully bound
		"mlrel_p_s":     nil,      // clearance c never demands the s level
	}
	for pred, ads := range want {
		got := s.Pred(pred).Adornments
		if !reflect.DeepEqual(got, ads) {
			t.Errorf("%s adornments = %v, want %v", pred, got, ads)
		}
	}
	if _, ok := s.Preds["mlrel_p_s"]; !ok {
		t.Error("mlrel_p_s should still be summarized (it exists in the program)")
	}
	if !s.Pred("dominate").Recursive {
		t.Error("dominate (axiom a3) should be recursive")
	}
}
