package analysis

import (
	"testing"
)

func TestCostCartesian(t *testing.T) {
	p := mustParse(t, `
		a(1). b(2).
		pair(X, Y) :- a(X), b(Y).
		joined(X) :- a(X), b(X).
	`)
	cost := AnalyzeCost(p, CostOptions{})
	if len(cost.Cartesian) != 1 {
		t.Fatalf("want 1 cartesian site, got %+v", cost.Cartesian)
	}
	site := cost.Cartesian[0]
	if site.Head != "pair" || len(site.Groups) != 2 {
		t.Errorf("cartesian site = %+v", site)
	}
}

// TestCostCartesianIgnoresGroundLiterals pins that zero-variable body
// literals are existence filters, not product factors.
func TestCostCartesianIgnoresGroundLiterals(t *testing.T) {
	p := mustParse(t, `
		flag(on). a(1).
		gated(X) :- flag(on), a(X).
	`)
	if cost := AnalyzeCost(p, CostOptions{}); len(cost.Cartesian) != 0 {
		t.Errorf("ground guard should not be a cartesian factor: %+v", cost.Cartesian)
	}
}

func TestCostNonlinear(t *testing.T) {
	p := mustParse(t, `
		edge(a, b).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), tc(Y, Z).
	`)
	cost := AnalyzeCost(p, CostOptions{})
	if len(cost.Nonlinear) != 1 || cost.Nonlinear[0].Head != "tc" || len(cost.Nonlinear[0].Recursive) != 2 {
		t.Errorf("nonlinear sites = %+v", cost.Nonlinear)
	}
}

// TestCostFanout pins the first-order size estimate: a three-way
// cross-ish join of 10-fact relations estimates 1000 rows and trips the
// default threshold, while the recursive rule stays finite because the
// recursive literal contributes its base size, not its closure.
func TestCostFanout(t *testing.T) {
	src := ""
	for i := 0; i < 10; i++ {
		src += "r1(a" + string(rune('0'+i)) + ", x). r2(b" + string(rune('0'+i)) + ", x). r3(c" + string(rune('0'+i)) + ", x).\n"
	}
	src += "wide(A, B, C) :- r1(A, X), r2(B, X), r3(C, X).\n"
	src += "tc(X, Y) :- r1(X, Y).\n"
	src += "tc(X, Z) :- r1(X, Y), tc(Y, Z).\n"
	p := mustParse(t, src)
	cost := AnalyzeCost(p, CostOptions{})
	if len(cost.Fanout) != 1 || cost.Fanout[0].Head != "wide" {
		t.Fatalf("fanout sites = %+v", cost.Fanout)
	}
	if got := cost.Fanout[0].Estimate; got != 1000 {
		t.Errorf("wide estimate = %d, want 1000", got)
	}
	if got := cost.Sizes["tc"]; got <= 0 || got > 100 {
		t.Errorf("recursive tc estimate should stay first-order, got %d", got)
	}
	// Raising the threshold suppresses the finding.
	if c2 := AnalyzeCost(p, CostOptions{FanoutThreshold: 10000}); len(c2.Fanout) != 0 {
		t.Errorf("threshold 10000 should suppress the finding: %+v", c2.Fanout)
	}
}
