package analysis

import (
	"reflect"
	"sort"
	"testing"
)

// TestSolverReachability exercises the generic solver on the simplest
// monotone analysis: graph reachability as a boolean lattice.
func TestSolverReachability(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "b"}, {"d", "e"}}
	s := Solver[bool]{
		Bottom: func(string) bool { return false },
		Join: func(cur, in bool) (bool, bool) {
			return cur || in, in && !cur
		},
	}
	values, ok := s.Solve(len(edges),
		func(i int) []string { return []string{edges[i][0]} },
		func(i int, get func(string) bool) []Contribution[bool] {
			if get(edges[i][0]) {
				return []Contribution[bool]{{Key: edges[i][1], Value: true}}
			}
			return nil
		},
		[]Contribution[bool]{{Key: "a", Value: true}},
	)
	if !ok {
		t.Fatal("solver did not converge")
	}
	for _, want := range []string{"a", "b", "c"} {
		if !values[want] {
			t.Errorf("%s should be reachable", want)
		}
	}
	if values["d"] || values["e"] {
		t.Errorf("d/e should be unreachable, got %v", values)
	}
}

// TestSolverBudget pins that a runaway domain stops at the application
// budget and reports non-convergence instead of hanging.
func TestSolverBudget(t *testing.T) {
	s := Solver[int]{
		Bottom: func(string) int { return 0 },
		// Deliberately non-idempotent join: grows forever.
		Join:            func(cur, in int) (int, bool) { return cur + in, true },
		MaxApplications: 100,
	}
	_, ok := s.Solve(1,
		func(int) []string { return []string{"x"} },
		func(i int, get func(string) int) []Contribution[int] {
			return []Contribution[int]{{Key: "x", Value: 1}}
		},
		nil,
	)
	if ok {
		t.Fatal("non-terminating domain reported convergence")
	}
}

// TestSCCs pins the component decomposition used for recursion detection.
func TestSCCs(t *testing.T) {
	succ := map[string][]string{
		"a": {"b"},
		"b": {"c"},
		"c": {"a"},
		"d": {"a", "e"},
		"e": {},
		"f": {"f"},
	}
	comp := SCCs([]string{"a", "b", "c", "d", "e", "f"}, succ)
	if comp["a"] != comp["b"] || comp["b"] != comp["c"] {
		t.Errorf("a,b,c should share a component: %v", comp)
	}
	distinct := map[int]bool{comp["a"]: true, comp["d"]: true, comp["e"]: true, comp["f"]: true}
	if len(distinct) != 4 {
		t.Errorf("want 4 distinct components among {abc}, d, e, f: %v", comp)
	}
	var keys []string
	for k := range comp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if !reflect.DeepEqual(keys, []string{"a", "b", "c", "d", "e", "f"}) {
		t.Errorf("every node should be assigned: %v", comp)
	}
}
