package analysis

import (
	"sort"

	"repro/internal/datalog"
	"repro/internal/lattice"
	"repro/internal/multilog"
	"repro/internal/term"
)

// Flow is the MLS information-flow analysis result for one MultiLog
// database: per-predicate classification bounds over the security
// lattice, plus the structured findings lint formats as ML005–ML008.
//
// The central abstraction is the *source set* of a predicate p: an
// over-approximation of every security label whose relation to the
// asker's clearance u can change a visible answer involving p. Under the
// reduction semantics those labels enter in exactly three ways:
//
//   - a Σ rule body's m/b-atom level l is statically guarded by l ⪯ u
//     (sigmaClause drops the instance otherwise), so body levels gate
//     *derivation*;
//   - every classification reaching a class position is guarded by
//     c ⪯ u (classGuard in rule bodies, match at query time), so class
//     constants gate *visibility* row by row;
//   - label constants in key/value positions can be laundered into class
//     positions by later rules, so any label-valued constant in a fact
//     or rule is tracked conservatively.
//
// Assertion levels of facts are deliberately NOT sources: a fact stored
// at level h never enters rel(p, l) for l ⋡ h, independently of u, so it
// cannot make a fixed-low-level query clearance-sensitive.
//
// A predicate is ClearanceIndependent when every source is dominated by
// every asserted level — then every guard involving u passes identically
// at all clearances, and answers to any fixed-level query at a
// universally dominated level are byte-equal across clearances and
// belief modes. The differential harness validates exactly that claim
// (internal/differential, RunFlowCampaign).
type Flow struct {
	Poset *lattice.Poset
	// Preds maps each MultiLog (m-)predicate to its flow info.
	Preds map[string]*FlowInfo
	// Downgrades lists ML005 sites: rules whose visible head depends on
	// higher-classified premises.
	Downgrades []DowngradeSite
	// ImplicitModes lists ML006 sites: plain m-atoms over mode-divergent
	// predicates.
	ImplicitModes []ModeSite
	// DependentQueries lists ML007 sites: fixed-level stored queries
	// whose answers can vary with the asker's clearance.
	DependentQueries []QuerySite
	// Unsatisfiable lists ML008 sites: rules no asserted clearance can
	// both fire and see.
	Unsatisfiable []UnsatSite
	// Converged is false only if the fixpoint hit its budget; claims are
	// then withheld (no predicate is reported clearance-independent).
	Converged bool
}

// FlowInfo is the flow analysis result for one m-predicate.
type FlowInfo struct {
	Pred string
	// Sources is the sorted over-approximated source set (see Flow). When
	// AllLabels is set a level variable or lattice-valued builtin
	// contaminated the cone and Sources is the whole label set.
	Sources   []lattice.Label
	AllLabels bool
	// HeadLevels lists the levels at which facts or rule heads assert the
	// predicate, sorted.
	HeadLevels []lattice.Label
	// Bound is the least upper bound of Sources when the lattice has one.
	Bound    lattice.Label
	HasBound bool
	// ClearanceIndependent claims answers to fixed-level queries at
	// universally dominated levels are identical at every clearance.
	ClearanceIndependent bool
	// ModeDivergent reports the predicate is asserted at two comparable
	// levels, so its fir/opt/cau answers can differ.
	ModeDivergent bool
}

// DowngradeSite is one ML005 finding.
type DowngradeSite struct {
	Clause    int // index into Database.Sigma
	Pos       datalog.Position
	Pred      string
	HeadLevel lattice.Label // effective visibility level of the head
	Source    lattice.Label // offending source not dominated by HeadLevel
	Via       string        // "" when the source is a direct body level/class; else the body predicate it flows through
}

// ModeSite is one ML006 finding.
type ModeSite struct {
	Clause int // index into Database.Sigma, or -1 when in a query
	Query  int // index into Database.Queries, or -1 when in a rule
	Pos    datalog.Position
	Pred   string
	Levels []lattice.Label // the divergent assertion levels
}

// QuerySite is one ML007 finding.
type QuerySite struct {
	Query  int
	Goal   int
	Pos    datalog.Position
	Pred   string
	Level  lattice.Label
	Source lattice.Label // a source not dominated by Level
}

// UnsatSite is one ML008 finding.
type UnsatSite struct {
	Clause int
	Pos    datalog.Position
	Pred   string
	Levels []lattice.Label // the levels no asserted clearance jointly dominates
}

// PredNames returns the analyzed m-predicate names, sorted.
func (f *Flow) PredNames() []string {
	names := make([]string, 0, len(f.Preds))
	for name := range f.Preds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// labelSet is the abstract value: a set of security labels.
type labelSet map[lattice.Label]bool

// Keys for the two predicate namespaces: m-predicates of Σ and classical
// predicates of Π/Λ (which may share names).
func mKey(pred string) string { return "m:" + pred }
func pKey(pred string) string { return "p:" + pred }

// latticeBuiltins are classical predicates whose extension is the
// security lattice itself; any label can flow out of them.
var latticeBuiltins = map[string]bool{"level": true, "order": true, "dominate": true}

// AnalyzeFlow runs the MLS information-flow analysis. The database must
// have a well-formed Λ (a valid poset); otherwise the error is returned
// and the caller should rely on the admissibility lint (ML004) instead.
func AnalyzeFlow(db *multilog.Database) (*Flow, error) {
	poset, err := db.Poset()
	if err != nil {
		return nil, err
	}
	f := &Flow{Poset: poset, Preds: map[string]*FlowInfo{}, Converged: true}
	labels := poset.Labels()
	all := labelSet{}
	for _, l := range labels {
		all[l] = true
	}
	isLabel := func(name string) bool { return poset.Has(lattice.Label(name)) }

	// clauses = Σ then Π; one transfer per clause.
	type clauseRef struct {
		sigma bool
		c     multilog.Clause
	}
	var clauses []clauseRef
	for _, c := range db.Sigma {
		clauses = append(clauses, clauseRef{sigma: true, c: c})
	}
	for _, c := range db.Pi {
		clauses = append(clauses, clauseRef{sigma: false, c: c})
	}

	// labelConsts collects label-valued constants in a term tree.
	var labelConsts func(t term.Term, into labelSet)
	labelConsts = func(t term.Term, into labelSet) {
		switch t.Kind() {
		case term.KindConst:
			if isLabel(t.Name()) {
				into[lattice.Label(t.Name())] = true
			}
		case term.KindCompound:
			for _, a := range t.Args() {
				labelConsts(a, into)
			}
		}
	}

	// goalKeyAndConsts returns the dependency key a body goal reads (or
	// "") and adds its immediate label constants / level effects to into.
	goalEffects := func(g multilog.Goal, into labelSet) (readKeys []string, levelVar bool) {
		switch g.Kind {
		case multilog.GoalM, multilog.GoalB:
			if g.M.Level.IsVar() {
				levelVar = true
			} else if g.M.Level.Kind() == term.KindConst && isLabel(g.M.Level.Name()) {
				into[lattice.Label(g.M.Level.Name())] = true
			}
			labelConsts(g.M.Key, into)
			labelConsts(g.M.Class, into)
			labelConsts(g.M.Value, into)
			readKeys = append(readKeys, mKey(g.M.Pred))
			if g.Kind == multilog.GoalB {
				switch g.Mode {
				case multilog.ModeFir, multilog.ModeOpt, multilog.ModeCau:
				default:
					// User-defined modes reduce to the bel/7 predicate in Π.
					readKeys = append(readKeys, pKey(multilog.UserBelPred))
				}
			}
		default:
			if latticeBuiltins[g.P.Pred] {
				for l := range all {
					into[l] = true
				}
				return readKeys, levelVar
			}
			for _, a := range g.P.Args {
				labelConsts(a, into)
			}
			if !g.P.IsBuiltin() {
				readKeys = append(readKeys, pKey(g.P.Pred))
			}
		}
		return readKeys, levelVar
	}

	reads := func(i int) []string {
		var out []string
		for _, g := range clauses[i].c.Body {
			keys, _ := goalEffects(g, labelSet{})
			out = append(out, keys...)
		}
		return out
	}
	transfer := func(i int, get func(string) labelSet) []Contribution[labelSet] {
		ref := clauses[i]
		c := ref.c
		srcs := labelSet{}
		var headKey string
		if ref.sigma && (c.Head.Kind == multilog.GoalM || c.Head.Kind == multilog.GoalB) {
			headKey = mKey(c.Head.M.Pred)
			// The head's own assertion level is not a source, but every
			// other label constant in the head is carried into the
			// derived fact's terms.
			labelConsts(c.Head.M.Key, srcs)
			labelConsts(c.Head.M.Class, srcs)
			labelConsts(c.Head.M.Value, srcs)
			if c.Head.M.Level.IsVar() {
				// Level variables are grounded over every level; if the
				// variable escapes into a data position anywhere, any
				// label can flow. Blanket conservatively.
				for l := range all {
					srcs[l] = true
				}
			}
		} else {
			// Classical clause (Π) or Λ; Λ clauses are lattice facts and
			// are covered by latticeBuiltins on the read side.
			headKey = pKey(c.Head.P.Pred)
			for _, a := range c.Head.P.Args {
				labelConsts(a, srcs)
			}
		}
		for _, g := range c.Body {
			keys, levelVar := goalEffects(g, srcs)
			if levelVar {
				for l := range all {
					srcs[l] = true
				}
			}
			for _, k := range keys {
				for l := range get(k) {
					srcs[l] = true
				}
			}
		}
		return []Contribution[labelSet]{{Key: headKey, Value: srcs}}
	}

	solver := Solver[labelSet]{
		Bottom: func(string) labelSet { return labelSet{} },
		Join: func(cur, in labelSet) (labelSet, bool) {
			grew := false
			for l := range in {
				if !cur[l] {
					cur[l] = true
					grew = true
				}
			}
			return cur, grew
		},
	}
	values, converged := solver.Solve(len(clauses), reads, transfer, nil)
	f.Converged = converged

	// Universal levels: dominated by every asserted level. Sources inside
	// this set can never flip a guard between two clearances.
	universal := labelSet{}
	for _, l := range labels {
		ok := true
		for _, u := range labels {
			if !poset.Dominates(u, l) {
				ok = false
				break
			}
		}
		if ok {
			universal[l] = true
		}
	}

	// Per-predicate info.
	headLevels := map[string]labelSet{}
	for _, c := range db.Sigma {
		if c.Head.Kind != multilog.GoalM {
			continue
		}
		hl := headLevels[c.Head.M.Pred]
		if hl == nil {
			hl = labelSet{}
			headLevels[c.Head.M.Pred] = hl
		}
		if c.Head.M.Level.IsVar() {
			for l := range all {
				hl[l] = true
			}
		} else if c.Head.M.Level.Kind() == term.KindConst && isLabel(c.Head.M.Level.Name()) {
			hl[lattice.Label(c.Head.M.Level.Name())] = true
		}
	}
	// Queries can mention predicates Σ never asserts.
	for _, q := range db.Queries {
		for _, g := range q {
			if g.Kind == multilog.GoalM || g.Kind == multilog.GoalB {
				if headLevels[g.M.Pred] == nil {
					headLevels[g.M.Pred] = labelSet{}
				}
			}
		}
	}

	for pred, hl := range headLevels {
		srcs := values[mKey(pred)]
		info := &FlowInfo{Pred: pred}
		info.AllLabels = len(srcs) == len(all) && len(all) > 0
		info.Sources = sortedLabels(srcs)
		info.HeadLevels = sortedLabels(hl)
		if len(info.Sources) > 0 {
			info.Bound, info.HasBound = poset.LubAll(info.Sources)
		}
		indep := converged
		for l := range srcs {
			if !universal[l] {
				indep = false
				break
			}
		}
		info.ClearanceIndependent = indep
		info.ModeDivergent = divergent(poset, info.HeadLevels)
		f.Preds[pred] = info
	}

	f.findSites(db, values, all)
	sortSites(f)
	return f, nil
}

// divergent reports whether two distinct comparable levels both assert
// the predicate — the shape under which firm, optimistic and cautious
// beliefs at the higher level can disagree (opt inherits the lower
// level's cell, cau suppresses it when a dominating classification
// exists, fir sees neither).
func divergent(poset *lattice.Poset, levels []lattice.Label) bool {
	for i, a := range levels {
		for _, b := range levels[i+1:] {
			if a != b && (poset.Dominates(a, b) || poset.Dominates(b, a)) {
				return true
			}
		}
	}
	return false
}

// findSites derives the ML005-ML008 finding sites from the solved source
// sets.
func (f *Flow) findSites(db *multilog.Database, values map[string]labelSet, all labelSet) {
	poset := f.Poset
	constLabel := func(t term.Term) (lattice.Label, bool) {
		if t.Kind() == term.KindConst && poset.Has(lattice.Label(t.Name())) {
			return lattice.Label(t.Name()), true
		}
		return "", false
	}

	for ci, c := range db.Sigma {
		if c.Head.Kind != multilog.GoalM || c.IsFact() {
			continue // ML003 covers ground facts; rules are the channel shape
		}
		headLevel, ok := constLabel(c.Head.M.Level)
		if !ok {
			continue // level-variable heads assert at every level; no fixed target to downgrade to
		}
		// Effective visibility level: a subject needs u ⪰ level and
		// u ⪰ class to see the derived row, so the head's ground class
		// raises the bar when the lattice can join them.
		effLevel := headLevel
		if hc, ok := constLabel(c.Head.M.Class); ok {
			if lub, ok := poset.Lub(headLevel, hc); ok {
				effLevel = lub
			}
		}

		// One site per (rule, source): a rule reading an s-level atom over
		// an s-sourced predicate is one channel, not two. Direct sites win
		// over via-sites because the body's own labels are reported first.
		seen := map[lattice.Label]bool{}
		addDowngrade := func(src lattice.Label, via string) {
			if poset.Dominates(effLevel, src) || seen[src] {
				return
			}
			seen[src] = true
			f.Downgrades = append(f.Downgrades, DowngradeSite{
				Clause: ci, Pos: c.Pos(), Pred: c.Head.M.Pred,
				HeadLevel: effLevel, Source: src, Via: via,
			})
		}

		var bodyLevels []lattice.Label
		levelled := true
		for _, g := range c.Body {
			switch g.Kind {
			case multilog.GoalM, multilog.GoalB:
				if l, ok := constLabel(g.M.Level); ok {
					bodyLevels = append(bodyLevels, l)
					addDowngrade(l, "")
				} else {
					levelled = false
				}
				if cl, ok := constLabel(g.M.Class); ok {
					bodyLevels = append(bodyLevels, cl)
					addDowngrade(cl, "")
				}
				for src := range values[mKey(g.M.Pred)] {
					addDowngrade(src, g.M.Pred)
				}
				// ML006: a plain m-atom reads raw visibility — the firm
				// mode in disguise — over a predicate whose modes diverge.
				if g.Kind == multilog.GoalM {
					if info := f.Preds[g.M.Pred]; info != nil && info.ModeDivergent {
						f.ImplicitModes = append(f.ImplicitModes, ModeSite{
							Clause: ci, Query: -1, Pos: goalPos(g, c.Pos()),
							Pred: g.M.Pred, Levels: info.HeadLevels,
						})
					}
				}
			}
		}

		// ML008: some asserted level must dominate every body level plus
		// the head's effective level, or no clearance can both fire the
		// rule and see its result.
		if levelled {
			needed := append([]lattice.Label{effLevel}, bodyLevels...)
			satisfiable := false
			for l := range all {
				ok := true
				for _, n := range needed {
					if !poset.Dominates(l, n) {
						ok = false
						break
					}
				}
				if ok {
					satisfiable = true
					break
				}
			}
			if !satisfiable {
				f.Unsatisfiable = append(f.Unsatisfiable, UnsatSite{
					Clause: ci, Pos: c.Pos(), Pred: c.Head.M.Pred,
					Levels: dedupeLabels(needed),
				})
			}
		}
	}

	// Query sites: ML006 and ML007 over stored queries.
	for qi, q := range db.Queries {
		for gi, g := range q {
			if g.Kind != multilog.GoalM && g.Kind != multilog.GoalB {
				continue
			}
			info := f.Preds[g.M.Pred]
			if g.Kind == multilog.GoalM && info != nil && info.ModeDivergent {
				f.ImplicitModes = append(f.ImplicitModes, ModeSite{
					Clause: -1, Query: qi, Pos: g.Pos,
					Pred: g.M.Pred, Levels: info.HeadLevels,
				})
			}
			l, ok := constLabel(g.M.Level)
			if !ok {
				continue // variable-level queries are clearance-scoped by design
			}
			for _, src := range sortedLabels(values[mKey(g.M.Pred)]) {
				if !poset.Dominates(l, src) {
					f.DependentQueries = append(f.DependentQueries, QuerySite{
						Query: qi, Goal: gi, Pos: g.Pos,
						Pred: g.M.Pred, Level: l, Source: src,
					})
					break // one offending source explains the finding
				}
			}
		}
	}
}

// goalPos prefers the goal's own position, falling back to the clause's.
func goalPos(g multilog.Goal, fallback datalog.Position) datalog.Position {
	if g.Pos.Line != 0 {
		return g.Pos
	}
	return fallback
}

func sortedLabels(s labelSet) []lattice.Label {
	out := make([]lattice.Label, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupeLabels(in []lattice.Label) []lattice.Label {
	seen := labelSet{}
	var out []lattice.Label
	for _, l := range in {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortSites makes every finding list deterministic.
func sortSites(f *Flow) {
	sort.Slice(f.Downgrades, func(i, j int) bool {
		a, b := f.Downgrades[i], f.Downgrades[j]
		if a.Clause != b.Clause {
			return a.Clause < b.Clause
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Via < b.Via
	})
	sort.Slice(f.ImplicitModes, func(i, j int) bool {
		a, b := f.ImplicitModes[i], f.ImplicitModes[j]
		if a.Clause != b.Clause {
			return a.Clause < b.Clause
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return a.Pred < b.Pred
	})
	sort.Slice(f.DependentQueries, func(i, j int) bool {
		a, b := f.DependentQueries[i], f.DependentQueries[j]
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return a.Goal < b.Goal
	})
	sort.Slice(f.Unsatisfiable, func(i, j int) bool {
		return f.Unsatisfiable[i].Clause < f.Unsatisfiable[j].Clause
	})
}
