package analysis

import (
	"sort"

	"repro/internal/datalog"
)

// MaxEstimate saturates size arithmetic; estimates are heuristics, and a
// saturated product already means "too big to join naively".
const MaxEstimate int64 = 1 << 40

// DefaultFanoutThreshold is the estimated-rows bound above which a rule
// body is flagged (DL011).
const DefaultFanoutThreshold int64 = 1000

// CostOptions tunes the cost analysis.
type CostOptions struct {
	// FanoutThreshold overrides DefaultFanoutThreshold; <= 0 means the
	// default.
	FanoutThreshold int64
}

// Cost is the result of the cost/shape analysis.
type Cost struct {
	// Sizes estimates each predicate's relation size: the max of its fact
	// count and its rules' first-order fan-out. "First-order" means one
	// application per rule — literals recursive with the head contribute
	// their base (non-recursive) size, so the estimate describes one join
	// pass, not the fixpoint closure, and stays finite without caps.
	Sizes map[string]int64
	// Cartesian lists rule bodies whose positive literals split into
	// variable-disjoint groups (DL009).
	Cartesian []CartesianSite
	// Nonlinear lists rules with two or more body literals in the head's
	// recursive component (DL010).
	Nonlinear []NonlinearSite
	// Fanout lists rule bodies whose estimated join size reaches the
	// threshold (DL011).
	Fanout []FanoutSite
}

// CartesianSite locates one cartesian-product rule body.
type CartesianSite struct {
	Clause int
	Pos    datalog.Position
	Head   string
	// Groups are the variable-disjoint partitions of the positive body
	// literals, rendered, each group joined with no shared variable
	// against the others.
	Groups [][]string
}

// NonlinearSite locates one nonlinearly recursive rule.
type NonlinearSite struct {
	Clause int
	Pos    datalog.Position
	Head   string
	// Recursive lists the body literals in the head's component.
	Recursive []string
}

// FanoutSite locates one wide-join rule body.
type FanoutSite struct {
	Clause   int
	Pos      datalog.Position
	Head     string
	Estimate int64
}

// AnalyzeCost runs the cost/shape analysis over a classical program.
func AnalyzeCost(p *datalog.Program, opts CostOptions) *Cost {
	threshold := opts.FanoutThreshold
	if threshold <= 0 {
		threshold = DefaultFanoutThreshold
	}
	cost := &Cost{Sizes: map[string]int64{}}

	facts := map[string]int64{}
	var preds []string
	seen := map[string]bool{}
	touch := func(a datalog.Atom) {
		if !a.IsBuiltin() && !seen[a.Pred] {
			seen[a.Pred] = true
			preds = append(preds, a.Pred)
		}
	}
	for _, c := range p.Clauses {
		touch(c.Head)
		if c.IsFact() {
			facts[c.Head.Pred]++
		}
		for _, l := range c.Body {
			touch(l.Atom)
		}
	}
	sort.Strings(preds)

	succ := map[string][]string{}
	for _, e := range datalog.DependencyGraph(p) {
		succ[e.From] = append(succ[e.From], e.To)
	}
	comp := SCCs(preds, succ)

	// Size fixpoint on the framework: join is max (idempotent, monotone),
	// and recursion cannot spiral because a body literal in the head's
	// own component contributes its base size, not its current estimate —
	// the abstract domain is the finite set of first-order products.
	base := func(pred string) int64 {
		if n := facts[pred]; n > 0 {
			return n
		}
		return 1
	}
	ruleEstimate := func(c datalog.Clause, get func(string) int64) int64 {
		est := int64(1)
		for _, l := range c.Body {
			if l.Atom.IsBuiltin() || l.Negated {
				continue // filters never grow the join
			}
			sz := get(l.Atom.Pred)
			if bc, ok := comp[l.Atom.Pred]; ok && bc == comp[c.Head.Pred] {
				sz = base(l.Atom.Pred)
			}
			if sz < 1 {
				sz = 1
			}
			if est > MaxEstimate/sz {
				return MaxEstimate
			}
			est *= sz
		}
		return est
	}
	solver := Solver[int64]{
		Bottom: func(string) int64 { return 0 },
		Join: func(cur, in int64) (int64, bool) {
			if in > cur {
				return in, true
			}
			return cur, false
		},
	}
	reads := func(i int) []string {
		var out []string
		for _, l := range p.Clauses[i].Body {
			if !l.Atom.IsBuiltin() {
				out = append(out, l.Atom.Pred)
			}
		}
		return out
	}
	transfer := func(i int, get func(string) int64) []Contribution[int64] {
		c := p.Clauses[i]
		if c.IsFact() {
			return []Contribution[int64]{{Key: c.Head.Pred, Value: facts[c.Head.Pred]}}
		}
		return []Contribution[int64]{{Key: c.Head.Pred, Value: ruleEstimate(c, get)}}
	}
	sizes, _ := solver.Solve(len(p.Clauses), reads, transfer, nil)
	for _, pred := range preds {
		cost.Sizes[pred] = sizes[pred]
	}

	// Shape findings per rule.
	for ci, c := range p.Clauses {
		if c.IsFact() {
			continue
		}
		if groups := cartesianGroups(c); len(groups) >= 2 {
			cost.Cartesian = append(cost.Cartesian, CartesianSite{
				Clause: ci, Pos: c.Head.Pos, Head: c.Head.Pred, Groups: groups,
			})
		}
		var rec []string
		for _, l := range c.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			if bc, ok := comp[l.Atom.Pred]; ok && bc == comp[c.Head.Pred] {
				rec = append(rec, l.String())
			}
		}
		if len(rec) >= 2 {
			cost.Nonlinear = append(cost.Nonlinear, NonlinearSite{
				Clause: ci, Pos: c.Head.Pos, Head: c.Head.Pred, Recursive: rec,
			})
		}
		if est := ruleEstimate(c, func(pred string) int64 { return sizes[pred] }); est >= threshold {
			cost.Fanout = append(cost.Fanout, FanoutSite{
				Clause: ci, Pos: c.Head.Pos, Head: c.Head.Pred, Estimate: est,
			})
		}
	}
	return cost
}

// cartesianGroups partitions the positive, variable-carrying body
// literals into connected components of the shared-variable graph. Two or
// more groups mean the body computes a cartesian product. Ground literals
// (no variables) are existence filters, not product factors, and are
// ignored; so are builtins, which only constrain.
func cartesianGroups(c datalog.Clause) [][]string {
	type lit struct {
		text string
		vars []string
	}
	var lits []lit
	for _, l := range c.Body {
		if l.Negated || l.Atom.IsBuiltin() {
			continue
		}
		vars := l.Atom.Vars(nil)
		if len(vars) == 0 {
			continue
		}
		lits = append(lits, lit{text: l.String(), vars: vars})
	}
	if len(lits) < 2 {
		return nil
	}
	// Union-find over literal indices via shared variables.
	parent := make([]int, len(lits))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := map[string]int{}
	for i, l := range lits {
		for _, v := range l.vars {
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groupsByRoot := map[int][]string{}
	var roots []int
	for i, l := range lits {
		r := find(i)
		if _, ok := groupsByRoot[r]; !ok {
			roots = append(roots, r)
		}
		groupsByRoot[r] = append(groupsByRoot[r], l.text)
	}
	if len(roots) < 2 {
		return nil
	}
	sort.Ints(roots)
	groups := make([][]string, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, groupsByRoot[r])
	}
	return groups
}
