package analysis

import (
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Adorn runs the adornment/groundness analysis: starting from the seed
// goals (normally the program's queries), it propagates b/f binding
// patterns top-down through rule bodies using exactly the sideways
// information passing the engines use — datalog.OrderBody for literal
// order and datalog.AdornmentOf for what counts as bound — and records
// every adornment that can reach each predicate. Sharing those two
// helpers with the magic-sets rewrite is the point: a plan cache keyed on
// this summary prepares precisely the specializations MagicSet would
// build.
//
// When seeds is empty the analysis assumes nothing about callers and
// seeds every predicate with the all-free adornment (the bottom-up
// posture: any predicate may be demanded with no bindings).
func Adorn(p *datalog.Program, seeds []datalog.Atom) *Summary {
	s := newSummary(p)

	type adSet = map[string]bool
	solver := Solver[adSet]{
		Bottom: func(string) adSet { return adSet{} },
		Join: func(cur, in adSet) (adSet, bool) {
			grew := false
			for ad := range in {
				if !cur[ad] {
					cur[ad] = true
					grew = true
				}
			}
			return cur, grew
		},
	}

	// One transfer per clause: it reads the head predicate's reachable
	// adornments and pushes the induced body adornments sideways.
	reads := func(i int) []string { return []string{p.Clauses[i].Head.Pred} }
	transfer := func(i int, get func(string) adSet) []Contribution[adSet] {
		c := p.Clauses[i]
		var out []Contribution[adSet]
		for ad := range get(c.Head.Pred) {
			if len(ad) != len(c.Head.Args) {
				continue // arity mismatch; DL004's problem, not ours
			}
			for _, call := range bodyCalls(c, ad) {
				out = append(out, Contribution[adSet]{Key: call.Pred, Value: adSet{call.Ad: true}})
			}
		}
		return out
	}

	var seedContribs []Contribution[adSet]
	if len(seeds) == 0 {
		for name, info := range s.Preds {
			seedContribs = append(seedContribs, Contribution[adSet]{
				Key: name, Value: adSet{strings.Repeat("f", info.Arity): true},
			})
		}
	}
	for _, q := range seeds {
		if q.IsBuiltin() {
			continue
		}
		seedContribs = append(seedContribs, Contribution[adSet]{
			Key: q.Pred, Value: adSet{datalog.AdornmentOf(q, nil): true},
		})
	}

	values, converged := solver.Solve(len(p.Clauses), reads, transfer, seedContribs)
	s.Converged = converged

	for name, ads := range values {
		info := s.Preds[name]
		if info == nil {
			continue // builtin or arity-mismatched ghost
		}
		for ad := range ads {
			info.Adornments = append(info.Adornments, ad)
		}
		sort.Strings(info.Adornments)
	}

	markRecursion(p, s)
	markFloundering(p, s, values)
	return s
}

// bodyCalls simulates one SIPS pass over the clause under a head
// adornment and returns every non-builtin (pred, adornment) call site in
// order: variables bound by the head's 'b' arguments and by each passed
// positive literal bind the literals to their right, exactly as
// MagicSet's adornRule walks the same OrderBody order.
func bodyCalls(c datalog.Clause, headAd string) []struct{ Pred, Ad string } {
	bound := map[string]bool{}
	for i, t := range c.Head.Args {
		if headAd[i] == 'b' {
			for _, v := range t.Vars(nil) {
				bound[v] = true
			}
		}
	}
	var out []struct{ Pred, Ad string }
	for _, l := range datalog.OrderBody(c.Body) {
		if !l.Atom.IsBuiltin() {
			out = append(out, struct{ Pred, Ad string }{l.Atom.Pred, datalog.AdornmentOf(l.Atom, bound)})
		}
		if !l.Negated && l.Atom.Pred != datalog.BuiltinNeq {
			for _, v := range l.Atom.Vars(nil) {
				bound[v] = true
			}
		}
	}
	return out
}

// newSummary scaffolds PredInfo for every non-builtin predicate.
func newSummary(p *datalog.Program) *Summary {
	s := &Summary{Preds: map[string]*PredInfo{}, Converged: true}
	touch := func(a datalog.Atom) *PredInfo {
		if a.IsBuiltin() {
			return nil
		}
		info := s.Preds[a.Pred]
		if info == nil {
			info = &PredInfo{Name: a.Pred, Arity: len(a.Args), EDB: true}
			s.Preds[a.Pred] = info
		}
		return info
	}
	for _, c := range p.Clauses {
		info := touch(c.Head)
		if info != nil {
			if c.IsFact() {
				info.Facts++
			} else {
				info.Rules++
				info.EDB = false
			}
		}
		for _, l := range c.Body {
			touch(l.Atom)
		}
	}
	for _, q := range p.Queries {
		touch(q)
	}
	return s
}

// markRecursion sets the Recursive / NonlinearRecursion / UnboundRecursion
// flags from the positive+negative dependency SCCs.
func markRecursion(p *datalog.Program, s *Summary) {
	succ := map[string][]string{}
	self := map[string]bool{}
	for _, e := range datalog.DependencyGraph(p) {
		succ[e.From] = append(succ[e.From], e.To)
		if e.From == e.To {
			self[e.From] = true
		}
	}
	comp := SCCs(s.PredNames(), succ)
	sizes := map[int]int{}
	for _, c := range comp {
		sizes[c]++
	}
	for name, info := range s.Preds {
		c, ok := comp[name]
		if !ok {
			continue
		}
		info.Recursive = self[name] || sizes[c] > 1
		if !info.Recursive {
			continue
		}
		if info.Arity > 0 {
			allFree := strings.Repeat("f", info.Arity)
			for _, ad := range info.Adornments {
				if ad == allFree {
					info.UnboundRecursion = true
				}
			}
		}
	}
	// Nonlinear: some rule has >= 2 body literals in the head's component.
	for _, c := range p.Clauses {
		info := s.Preds[c.Head.Pred]
		if info == nil || !info.Recursive {
			continue
		}
		headComp := comp[c.Head.Pred]
		n := 0
		for _, l := range c.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			if bc, ok := comp[l.Atom.Pred]; ok && bc == headComp {
				n++
			}
		}
		if n >= 2 {
			info.NonlinearRecursion = true
		}
	}
}

// markFloundering re-walks every clause under each reachable head
// adornment and records negated / '!=' literals reached with an unbound
// variable. With range restriction (DL001) and the OrderBody deferral
// this cannot happen, so a hit here always coincides with an unsafe
// program — but the plan cache must know either way.
func markFloundering(p *datalog.Program, s *Summary, values map[string]map[string]bool) {
	for ci, c := range p.Clauses {
		info := s.Preds[c.Head.Pred]
		if info == nil {
			continue
		}
		for ad := range values[c.Head.Pred] {
			if len(ad) != len(c.Head.Args) {
				continue
			}
			bound := map[string]bool{}
			for i, t := range c.Head.Args {
				if ad[i] == 'b' {
					for _, v := range t.Vars(nil) {
						bound[v] = true
					}
				}
			}
			for _, l := range datalog.OrderBody(c.Body) {
				if l.Negated || l.Atom.Pred == datalog.BuiltinNeq {
					for _, v := range l.Atom.Vars(nil) {
						if !bound[v] {
							info.Floundering = append(info.Floundering, FlounderSite{
								Clause: ci, Pos: c.Head.Pos, Literal: l.String(), Adornment: ad,
							})
							break
						}
					}
				}
				if !l.Negated && l.Atom.Pred != datalog.BuiltinNeq {
					for _, v := range l.Atom.Vars(nil) {
						bound[v] = true
					}
				}
			}
		}
		sort.Slice(info.Floundering, func(i, j int) bool {
			a, b := info.Floundering[i], info.Floundering[j]
			if a.Clause != b.Clause {
				return a.Clause < b.Clause
			}
			if a.Adornment != b.Adornment {
				return a.Adornment < b.Adornment
			}
			return a.Literal < b.Literal
		})
	}
}

// Datalog is the everything analysis for a classical program: adornments
// seeded from the program's own queries, recursion shape, floundering,
// and cost estimates merged into one Summary.
func Datalog(p *datalog.Program) *Summary {
	s := Adorn(p, p.Queries)
	cost := AnalyzeCost(p, CostOptions{})
	for name, est := range cost.Sizes {
		if info := s.Preds[name]; info != nil {
			info.SizeEstimate = est
		}
	}
	return s
}
