package analysis

import (
	"reflect"
	"testing"

	"repro/internal/lattice"
	"repro/internal/multilog"
)

func mustParseML(t *testing.T, src string) *multilog.Database {
	t.Helper()
	db, err := multilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return db
}

// TestFlowD1 pins the analysis on the paper's Figure 10 database: the
// showcase program is flow-clean (no downgrades — r8 lifts u-classified
// data *up* to s), p is mode-divergent (asserted at u, c and s, which is
// the whole point of Example 5.2), and p is clearance-dependent because
// the c-classified cell of r7 is visible only to subjects cleared at c.
func TestFlowD1(t *testing.T) {
	f, err := AnalyzeFlow(multilog.D1())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Converged {
		t.Fatal("flow fixpoint did not converge")
	}
	if len(f.Downgrades)+len(f.ImplicitModes)+len(f.DependentQueries)+len(f.Unsatisfiable) != 0 {
		t.Errorf("D1 should be flow-clean, got %+v %+v %+v %+v",
			f.Downgrades, f.ImplicitModes, f.DependentQueries, f.Unsatisfiable)
	}
	p := f.Preds["p"]
	if p == nil {
		t.Fatal("no flow info for p")
	}
	if got := p.Sources; !reflect.DeepEqual(got, []lattice.Label{"c", "u"}) {
		t.Errorf("p sources = %v, want [c u]", got)
	}
	if !p.ModeDivergent {
		t.Error("p is asserted at u, c and s: ModeDivergent should be set")
	}
	if p.ClearanceIndependent {
		t.Error("p depends on the c-classified cell: not clearance-independent")
	}
	if !p.HasBound || p.Bound != "c" {
		t.Errorf("p bound = %v/%v, want c", p.Bound, p.HasBound)
	}
	if got := p.HeadLevels; !reflect.DeepEqual(got, []lattice.Label{"c", "s", "u"}) {
		t.Errorf("p head levels = %v, want [c s u]", got)
	}
}

// TestFlowDowngrade pins ML005: publishing an unclassified digest of
// secret mission data is a downgrade channel — the u-level head's
// derivations depend on s-level premises, so the digest's presence
// signals classified state to low-cleared subjects.
func TestFlowDowngrade(t *testing.T) {
	db := mustParseML(t, `
		level(u). level(s). order(u, s).
		s[mission(m1: objective -s-> spying)].
		u[digest(m1: gist -u-> active)] :- s[mission(m1: objective -C-> spying)] << opt.
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Downgrades) == 0 {
		t.Fatal("want a downgrade finding")
	}
	d := f.Downgrades[0]
	if d.Pred != "digest" || d.HeadLevel != "u" || d.Source != "s" {
		t.Errorf("downgrade = %+v", d)
	}
	if f.Preds["digest"].ClearanceIndependent {
		t.Error("a downgraded predicate is clearance-dependent by construction")
	}
}

// TestFlowClearanceIndependent pins the claim the differential campaign
// validates: a predicate whose whole cone sits at the universally
// dominated level is answer-stable across clearances.
func TestFlowClearanceIndependent(t *testing.T) {
	db := mustParseML(t, `
		level(u). level(s). order(u, s).
		u[pub(k1: a -u-> v1)].
		u[pub2(k1: a -u-> v2)] :- u[pub(k1: a -u-> v1)] << fir.
		s[sec(k1: a -s-> v3)].
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"pub", "pub2"} {
		info := f.Preds[pred]
		if info == nil || !info.ClearanceIndependent {
			t.Errorf("%s should be clearance-independent: %+v", pred, info)
		}
	}
	if f.Preds["sec"].ClearanceIndependent {
		t.Error("sec carries an s classification: not clearance-independent")
	}
}

// TestFlowImplicitMode pins ML006: a plain m-atom over a predicate
// asserted at two comparable levels silently means firm-mode visibility.
func TestFlowImplicitMode(t *testing.T) {
	db := mustParseML(t, `
		level(u). level(s). order(u, s).
		u[intel(base: status -u-> nominal)].
		s[intel(base: status -s-> compromised)].
		s[watch(base: action -s-> monitor)] :- s[intel(base: status -C-> V)].
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ImplicitModes) != 1 {
		t.Fatalf("want 1 implicit-mode site, got %+v", f.ImplicitModes)
	}
	site := f.ImplicitModes[0]
	if site.Pred != "intel" || site.Query != -1 {
		t.Errorf("site = %+v", site)
	}
	if got := site.Levels; !reflect.DeepEqual(got, []lattice.Label{"s", "u"}) {
		t.Errorf("divergent levels = %v, want [s u]", got)
	}
}

// TestFlowDependentQuery pins ML007: a stored query fixed at a low level
// over a predicate whose cone reaches higher classifications answers
// differently depending on who asks.
func TestFlowDependentQuery(t *testing.T) {
	db := mustParseML(t, `
		level(u). level(s). order(u, s).
		s[report(r1: body -s-> details)].
		u[board(r1: summary -u-> posted)] :- s[report(r1: body -C-> V)] << fir.
		?- u[board(r1: summary -u-> S)].
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DependentQueries) != 1 {
		t.Fatalf("want 1 dependent-query site, got %+v", f.DependentQueries)
	}
	q := f.DependentQueries[0]
	if q.Pred != "board" || q.Level != "u" || q.Source != "s" {
		t.Errorf("site = %+v", q)
	}
}

// TestFlowUnsatisfiable pins ML008 on an incomparable pair: no asserted
// clearance dominates both wings, so the rule can never produce a
// visible answer for anyone.
func TestFlowUnsatisfiable(t *testing.T) {
	db := mustParseML(t, `
		level(army). level(navy).
		army[ops(o1: status -army-> go)] :- navy[fleet(f1: status -navy-> ready)] << fir.
		navy[fleet(f1: status -navy-> ready)].
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Unsatisfiable) != 1 {
		t.Fatalf("want 1 unsatisfiable site, got %+v", f.Unsatisfiable)
	}
	u := f.Unsatisfiable[0]
	if u.Pred != "ops" {
		t.Errorf("site = %+v", u)
	}
	if got := u.Levels; !reflect.DeepEqual(got, []lattice.Label{"army", "navy"}) {
		t.Errorf("levels = %v, want [army navy]", got)
	}
}

// TestFlowLevelVariableBlankets pins the conservative treatment of level
// variables: the predicate loses every independence claim.
func TestFlowLevelVariableBlankets(t *testing.T) {
	db := mustParseML(t, `
		level(u). level(s). order(u, s).
		u[base(k1: a -u-> v)].
		u[echo(k1: a -u-> v)] :- L[base(k1: a -u-> v)] << opt.
	`)
	f, err := AnalyzeFlow(db)
	if err != nil {
		t.Fatal(err)
	}
	info := f.Preds["echo"]
	if info == nil || !info.AllLabels || info.ClearanceIndependent {
		t.Errorf("level-variable body should blanket echo: %+v", info)
	}
}
