// Package analysis implements whole-program static analyses for the
// Datalog and MultiLog front-ends as instances of one generic monotone
// dataflow framework: a worklist fixpoint over the predicate dependency
// graph, parameterized by a join-semilattice of abstract values.
//
// Three analyses are instantiated on it:
//
//   - adornment/groundness (adornment.go): which b/f binding patterns
//     reach each predicate from the program's queries, whether negation
//     can flounder under a reachable adornment, and whether recursion is
//     ever entered with no bound argument — the metadata a compiled
//     engine's plan cache keys on;
//   - MLS information flow (flow.go): per-predicate classification
//     bounds over the security lattice, downgrade channels, belief-mode
//     divergence, and clearance-(in)dependence claims that the
//     differential harness cross-validates against the reduction
//     semantics;
//   - cost/shape (cost.go): cartesian-product rule bodies, nonlinear
//     recursion, and first-order join fan-out estimates.
//
// The framework deliberately mirrors the lattice-valued fixpoint view of
// Datalog semantics (MV-Datalog±, Loyer/Spyratos/Stamate): an analysis is
// the same fixpoint computation run over an abstract domain instead of
// the concrete Herbrand base.
package analysis

// Contribution pairs a key (normally a predicate name) with an abstract
// value flowing into it.
type Contribution[V any] struct {
	Key   string
	Value V
}

// Solver is a generic monotone worklist solver. An instance fixes the
// value lattice via Bottom and Join; Solve then runs a set of transfer
// functions (normally one per clause) to their least fixpoint.
type Solver[V any] struct {
	// Bottom produces the least value for a key that has received no
	// contribution yet.
	Bottom func(key string) V
	// Join merges an incoming value into the current one and reports
	// whether the result strictly grew. Join must be monotone and
	// idempotent — it never shrinks, and joining a value twice changes
	// nothing — or Solve may not terminate.
	Join func(cur, in V) (V, bool)
	// MaxApplications bounds the total number of transfer applications,
	// guarding against accidentally infinite abstract domains. 0 means
	// the default (1e6).
	MaxApplications int
}

// Solve runs the fixpoint. rules is the number of transfer functions;
// reads(i) lists the keys whose growth re-queues rule i; transfer(i, get)
// returns rule i's contributions under the current assignment, where
// get(k) reads the current value of k (Bottom(k) if none). seed is joined
// in first. Every rule runs at least once. The returned map is the least
// fixpoint assignment; converged is false only when MaxApplications was
// exhausted first (the partial assignment is still a sound
// under-approximation of the fixpoint, but callers should degrade to
// "unknown" rather than trust it as complete).
func (s Solver[V]) Solve(
	rules int,
	reads func(i int) []string,
	transfer func(i int, get func(string) V) []Contribution[V],
	seed []Contribution[V],
) (values map[string]V, converged bool) {
	values = map[string]V{}
	join := func(c Contribution[V]) bool {
		cur, ok := values[c.Key]
		if !ok {
			cur = s.Bottom(c.Key)
		}
		next, grew := s.Join(cur, c.Value)
		if grew || !ok {
			values[c.Key] = next
		}
		return grew
	}
	get := func(k string) V {
		if v, ok := values[k]; ok {
			return v
		}
		return s.Bottom(k)
	}

	dependents := map[string][]int{}
	for i := 0; i < rules; i++ {
		for _, k := range reads(i) {
			dependents[k] = append(dependents[k], i)
		}
	}
	for _, c := range seed {
		join(c)
	}

	// Every rule starts queued so rules with no reads (facts) fire once.
	queued := make([]bool, rules)
	work := make([]int, 0, rules)
	enqueue := func(i int) {
		if !queued[i] {
			queued[i] = true
			work = append(work, i)
		}
	}
	for i := 0; i < rules; i++ {
		enqueue(i)
	}

	budget := s.MaxApplications
	if budget <= 0 {
		budget = 1_000_000
	}
	for len(work) > 0 {
		if budget == 0 {
			return values, false
		}
		budget--
		i := work[0]
		work = work[1:]
		queued[i] = false
		for _, c := range transfer(i, get) {
			if join(c) {
				for _, dep := range dependents[c.Key] {
					enqueue(dep)
				}
			}
		}
	}
	return values, true
}

// SCCs computes strongly connected components (Tarjan) of a graph given
// as adjacency lists over string nodes, in a deterministic order. It
// returns the component index per node; nodes in the same component are
// mutually reachable. Used by the cost and adornment analyses to detect
// recursion and to keep size estimates first-order.
func SCCs(nodes []string, succ map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	comp := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next, ncomp := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return comp
}
