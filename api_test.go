package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro"
)

// The facade exposes the full pipeline: every re-exported entry point works
// together on the paper's running example.
func TestFacadeEndToEnd(t *testing.T) {
	mission := repro.Mission()
	if mission.Len() != 10 {
		t.Fatalf("Mission = %d tuples", mission.Len())
	}
	view, err := repro.Beta(mission, repro.Classified, repro.Cautious)
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 4 {
		t.Fatalf("β cautious at C = %d tuples", view.Len())
	}

	db, err := repro.FromRelation(mission)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := repro.NewProver(db, repro.Secret)
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.ParseGoals(`s[mission(K: objective -C-> spying)] << cau`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := prover.Prove(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 { // voyager and phantom
		t.Fatalf("cautious spying at S = %d answers", len(answers))
	}

	red, err := repro.ReduceMultiLog(db, repro.Secret)
	if err != nil {
		t.Fatal(err)
	}
	redAnswers, err := red.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(redAnswers) != len(answers) {
		t.Fatalf("Theorem 6.1 through the facade: %d vs %d", len(redAnswers), len(answers))
	}

	sql := repro.NewSQLEngine()
	sql.Register(mission)
	res, err := sql.Execute(`user context s select starship from mission where objective = spying believed cautiously`)
	if err != nil {
		t.Fatal(err)
	}
	// SQL applies certain-answer semantics: the phantom objective forks
	// (spying vs supply at equal class S), so only voyager is certain —
	// the engine-level query above keeps both maximal cells instead.
	if len(res.Rows) != 1 || res.Rows[0][0] != "voyager" {
		t.Fatalf("SQL rows = %v", res.Rows)
	}
}

func TestFacadeLatticeAndDatalog(t *testing.T) {
	p, err := repro.Chain("low", "mid", "high")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Dominates("high", "low") {
		t.Error("chain broken through facade")
	}
	prog, err := repro.ParseDatalog(`edge(a, b). tc(X, Y) :- edge(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	model, err := repro.EvalDatalog(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 2 {
		t.Errorf("model = %d facts", model.Len())
	}
}

// ExampleBeta mirrors the quickstart: the cautious belief of a C-cleared
// subject about the Mission relation.
func ExampleBeta() {
	view, err := repro.Beta(repro.Mission(), repro.Classified, repro.Cautious)
	if err != nil {
		panic(err)
	}
	for _, row := range view.Rows() {
		fmt.Println(row)
	}
	// Output:
	// atlantis U | diplomacy U | vulcan U | C
	// voyager U | training U | mars U | C
	// falcon U | piracy U | venus U | C
	// eagle U | patrolling U | degoba U | C
}

// ExampleNewProver proves the paper's Example 5.2 query with its proof
// tree.
func ExampleNewProver() {
	prover, err := repro.NewProver(repro.D1(), repro.Classified)
	if err != nil {
		panic(err)
	}
	answers, err := prover.Prove(repro.D1Query(), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(answers[0].Bindings)
	fmt.Println("proof height:", answers[0].Proof.Height())
	// Output:
	// {R/u}
	// proof height: 4
}

// ExampleNewSQLEngine runs a belief-SQL query.
func ExampleNewSQLEngine() {
	e := repro.NewSQLEngine()
	e.Register(repro.Mission())
	res, err := e.Execute(`
		user context s
		select starship from mission
		where destination = mars and objective = spying
		believed cautiously`)
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.TrimSpace(res.Render()))
	// Output:
	// starship
	// voyager
}
