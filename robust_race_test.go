//go:build race

package repro_test

import "time"

// overrunBound under the race detector: instrumentation slows the unwind
// path severalfold, so the wall-clock assertion relaxes accordingly.
const overrunBound = 500 * time.Millisecond
