package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/datalog"
	"repro/internal/resource"
	"repro/internal/workload"
)

// queryDeadline is the wall-clock budget the acceptance test imposes, and
// overrunBound (see robust_norace_test.go / robust_race_test.go) is how far
// past it an engine may coast while unwinding.
const queryDeadline = 50 * time.Millisecond

// TestDeadlineAcrossAllEngines is the PR's acceptance criterion: a query with
// a 50ms deadline against an exponential-recursion workload comes back with
// ErrCanceled and partial Stats within the overrun bound on every Datalog
// strategy, the MultiLog prover and reduction, and the belief-SQL engine.
func TestDeadlineAcrossAllEngines(t *testing.T) {
	type run struct {
		name string
		exec func(ctx context.Context) (repro.EvalStats, error)
	}

	bottomUp := func(ev datalog.Evaluator) func(context.Context) (repro.EvalStats, error) {
		return func(ctx context.Context) (repro.EvalStats, error) {
			p, _ := workload.ExponentialDatalog(12, 6)
			e := ev
			_, err := e.EvalContext(ctx, p, nil)
			return e.Stats.Resource, err
		}
	}

	runs := []run{
		{"datalog/semi-naive", bottomUp(datalog.Evaluator{})},
		{"datalog/naive", bottomUp(datalog.Evaluator{Naive: true})},
		{"datalog/no-index", bottomUp(datalog.Evaluator{NoIndex: true})},
		{"datalog/parallel", bottomUp(datalog.Evaluator{Parallel: true, Workers: 4})},
		{"datalog/magic", func(ctx context.Context) (repro.EvalStats, error) {
			p, goal := workload.ExponentialDatalog(12, 6)
			_, stats, err := datalog.QueryMagicLimited(ctx, p, nil, goal, repro.EvalLimits{})
			return stats.Resource, err
		}},
		{"datalog/sld", func(ctx context.Context) (repro.EvalStats, error) {
			p, goal := workload.ExponentialDatalog(12, 6)
			s := datalog.NewSLD(p)
			_, err := s.ProveContext(ctx, goal, 0)
			return s.LastStats, err
		}},
		{"datalog/tabled", func(ctx context.Context) (repro.EvalStats, error) {
			p, goal := workload.ExponentialDatalog(12, 6)
			tb := datalog.NewTabled(p)
			_, err := tb.ProveContext(ctx, goal)
			return tb.LastStats, err
		}},
		{"multilog/prover", func(ctx context.Context) (repro.EvalStats, error) {
			db, q, err := workload.ExponentialProver(40)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, err := repro.ProveMultiLogContext(ctx, db, "u", q, repro.EvalLimits{})
			return stats, err
		}},
		{"multilog/reduction", func(ctx context.Context) (repro.EvalStats, error) {
			db, q, err := workload.ExponentialReduction(12, 6)
			if err != nil {
				t.Fatal(err)
			}
			red, err := repro.ReduceMultiLog(db, "u")
			if err != nil {
				t.Fatal(err)
			}
			_, qerr := red.QueryContext(ctx, q, repro.EvalLimits{})
			return red.LastStats, qerr
		}},
		{"mlsql", func(ctx context.Context) (repro.EvalStats, error) {
			e, src, err := workload.ExponentialSQL(300, 4)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, serr := repro.ExecuteSQLContext(ctx, e, src, repro.EvalLimits{})
			return stats, serr
		}},
	}

	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), queryDeadline)
			defer cancel()
			start := time.Now()
			stats, err := r.exec(ctx)
			elapsed := time.Since(start)
			if elapsed > overrunBound {
				t.Fatalf("returned %v after the %v deadline (bound %v)", elapsed, queryDeadline, overrunBound)
			}
			if !errors.Is(err, repro.ErrEvalCanceled) {
				t.Fatalf("err = %v, want ErrEvalCanceled", err)
			}
			if !stats.Truncated {
				t.Fatalf("stats = %+v, want Truncated", stats)
			}
			if stats.Steps == 0 && stats.FactsDerived == 0 {
				t.Fatalf("stats = %+v, want evidence of partial progress", stats)
			}
		})
	}
}

// TestFacadePanicContainment: a panic inside an engine surfaces at the
// facade as a typed *EvalInternalError carrying the stack, never a crash.
func TestFacadePanicContainment(t *testing.T) {
	p, _ := workload.ExponentialDatalog(4, 2)
	limits := repro.EvalLimits{Probe: func(resource.Event, int64) error {
		panic("probe bomb")
	}}
	_, _, err := repro.EvalDatalogContext(context.Background(), p, nil, limits)
	var ie *repro.EvalInternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *EvalInternalError", err)
	}
	if ie.Op != "repro.EvalDatalogContext" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError = {Op: %q, stack %d bytes}", ie.Op, len(ie.Stack))
	}
}

// TestFacadeGovernedComplete: the governed facade entry points agree with
// their ungoverned counterparts when the budget suffices.
func TestFacadeGovernedComplete(t *testing.T) {
	p, err := repro.ParseDatalog("e(a,b).\ne(b,c).\ntc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).")
	if err != nil {
		t.Fatal(err)
	}
	goal, err := datalog.ParseAtom("tc(a,X)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.QueryDatalog(p, nil, goal)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := repro.QueryDatalogContext(context.Background(), p, nil, goal,
		repro.EvalLimits{MaxFacts: 1000, MaxSteps: 100000, MaxMemory: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("governed facade: %d answers, ungoverned %d", len(got), len(want))
	}
	if stats.Truncated || stats.FactsDerived == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	db := repro.D1()
	q := repro.D1Query()
	wantML, err := repro.ReduceMultiLog(db, repro.Secret)
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := wantML.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	gotAns, err := repro.QueryMultiLogContext(context.Background(), repro.D1(), repro.Secret, q,
		repro.EvalLimits{MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAns) != len(wantAns) {
		t.Fatalf("governed reduction: %d answers, ungoverned %d", len(gotAns), len(wantAns))
	}
}
