// Starfleet walks the paper's full §3 narrative: how polyinstantiating
// updates create cover stories and surprise stories, how every party's
// beliefs differ (including the Jukic-Vrbsky fixed interpretations of
// Figures 4-5), and how the §3.2 belief-SQL query separates fact from
// cover story.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Replay the update history behind the Phantom rows of Figure 1:
	// U files a flight plan, S rewrites the objective under required
	// polyinstantiation, U deletes its tuple — and the S version, keyed at
	// U, becomes a surprise story.
	rel, err := repro.MissionByUpdates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("After the update history (the Phantom chains of Figure 1):")
	fmt.Println(rel.Render())

	fmt.Println("Surprise stories visible at C (nulls that leak the existence of cover stories):")
	for _, t := range rel.SurpriseStories(repro.Classified) {
		fmt.Printf("  %v\n", t.Values)
	}
	fmt.Println()

	// The full Figure 1 relation, and what each clearance believes.
	mission := repro.Mission()
	for _, level := range []repro.Label{repro.Unclassified, repro.Classified, repro.Secret} {
		fmt.Printf("--- a %s-cleared analyst ---\n", level)
		firm, err := repro.Beta(mission, level, repro.Firm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("firm (only own-level writes): %d missions\n", firm.Len())
		opt, err := repro.Beta(mission, level, repro.Optimistic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimistic (believe everything visible): %d missions\n", opt.Len())
		models, err := repro.BetaModels(mission, level, repro.Cautious)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cautious (higher classification overrides): %d model(s)\n", len(models))
		for _, m := range models {
			fmt.Println(m.Render())
		}
	}

	// The Jukic-Vrbsky baseline assigns each tuple a FIXED interpretation
	// (Figure 5) — exactly the rigidity §3.1 criticises.
	fmt.Println("--- the Jukic-Vrbsky fixed interpretations (Figures 4-5) ---")
	jvRel := repro.MissionJV()
	levels := []repro.Label{repro.Unclassified, repro.Classified, repro.Secret}
	for _, t := range jvRel.Tuples {
		fmt.Printf("%-9s (%s):", t.Values[0], t.TC.Render(jvRel.Poset))
		for _, l := range levels {
			fmt.Printf("  %s=%s", l, jvRel.Interpret(t, l))
		}
		fmt.Println()
	}
	fmt.Println()

	// The §3.2 query: who is *really* spying on Mars? An S analyst wants
	// certainty in every mode at once.
	sql := repro.NewSQLEngine()
	sql.Register(mission)
	res, err := sql.Execute(`
		user context s
		select starship from mission m
		where m.starship in (select starship from mission
		                     where destination = mars and objective = spying
		                     believed cautiously)
		intersect (select starship from mission
		           where destination = mars and objective = spying
		           believed firmly)
		intersect (select starship from mission
		           where destination = mars and objective = spying
		           believed optimistically)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Spying on Mars without any doubt (§3.2):")
	fmt.Print(res.Render())

	// At U the same query returns nothing: the U world only holds the
	// 'training' cover story.
	resU, err := sql.Execute(`
		user context u
		select starship from mission
		where destination = mars and objective = spying
		believed optimistically
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("The same question at U: %d rows — the cover story held.\n", len(resU.Rows))
}
