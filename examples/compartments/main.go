// Compartments keeps the category component of access classes that the
// paper drops "without the loss of any generality" (§2): intelligence
// reports compartmented into army and navy categories over the full
// level × category-set lattice, with belief reasoning across incomparable
// clearances.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The access-class lattice U < C < S crossed with {army, navy}.
	poset, err := repro.ProductLattice(repro.UCS(), []string{"army", "navy"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Access classes: %d (3 levels × 4 category sets)\n\n", poset.Len())

	scheme, err := repro.NewScheme("intel", poset, "source", "report", "region")
	if err != nil {
		log.Fatal(err)
	}
	rel := repro.NewRelation(scheme)
	insert := func(source, report, region string, class repro.Label) {
		rel.MustInsert(repro.Tuple{Values: []repro.Value{
			repro.V(source, class), repro.V(report, class), repro.V(region, class),
		}})
	}
	insert("radio", "routine", "coast", "u")
	insert("recon", "convoy", "desert", "s{army}")
	insert("sonar", "submarine", "strait", "s{navy}")
	// The army's cover story for the desert operation, visible to any
	// secret-cleared subject without the army compartment... is itself a
	// lower tuple at plain s.
	insert("recon", "exercise", "desert", "s")

	fmt.Println("The compartmented relation:")
	fmt.Println(rel.Render())

	for _, subject := range []repro.Label{"s", "s{army}", "s{navy}", "s{army,navy}"} {
		fmt.Printf("--- subject cleared %s ---\n", subject)
		view := rel.ViewAt(subject, repro.ViewOptions{})
		fmt.Println(view.Render())
		cautious, err := repro.BetaModels(rel, subject, repro.Cautious)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cautious belief (%d model(s)):\n", len(cautious))
		for _, m := range cautious {
			fmt.Println(m.Render())
		}
	}

	// Incomparability in action: s{army} and s{navy} see different worlds,
	// and neither dominates the other.
	if poset.Comparable("s{army}", "s{navy}") {
		log.Fatal("compartments must be incomparable")
	}
	fmt.Println("s{army} and s{navy} are incomparable: neither analyst can read the other's compartment.")
}
