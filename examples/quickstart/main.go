// Quickstart: the Mission relation, its level views, and the three belief
// modes — the paper's §3 in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	mission := repro.Mission() // Figure 1

	fmt.Println("The Mission relation (Figure 1):")
	fmt.Println(mission.Render())

	// What a C-cleared subject sees under plain Jajodia-Sandhu filtering
	// (Figure 3) — note the two null-carrying Phantom tuples, the paper's
	// surprise stories.
	fmt.Println("Jajodia-Sandhu view at C (Figure 3):")
	fmt.Println(mission.ViewAt(repro.Classified, repro.ViewOptions{}).Render())

	// The three belief modes of Definition 3.1. β works on the raw
	// relation, so the surprise stories are gone.
	for _, mode := range []repro.BeliefMode{repro.Firm, repro.Optimistic, repro.Cautious} {
		view, err := repro.Beta(mission, repro.Classified, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("β(Mission, C, %s):\n%s\n", mode, view.Render())
	}

	// Ad hoc belief reasoning in SQL (§3.2).
	sql := repro.NewSQLEngine()
	sql.Register(mission)
	res, err := sql.Execute(`
		user context s
		select starship from mission
		where destination = mars and objective = spying
		believed cautiously
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Spying on Mars, believed cautiously at S:")
	fmt.Print(res.Render())
}
