// Equivalence demonstrates the paper's two meta-results live: Theorem 6.1
// (the operational sequent semantics and the CORAL-style reduction agree)
// on D1 and on seeded random databases, and Proposition 6.1 (Datalog is the
// special case of MultiLog with empty security components).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	// --- Theorem 6.1 on the paper's own D1 (Figure 10) ---
	db := repro.D1()
	fmt.Println("D1 (Figure 10):")
	fmt.Println(db.String())

	agree, total := 0, 0
	probes := []string{
		`c[p(k: a -R-> v)] << opt`,
		`L[p(k: a -C-> V)]`,
		`L[p(k: a -C-> V)] << fir`,
		`L[p(k: a -C-> V)] << opt`,
		`L[p(k: a -C-> V)] << cau`,
	}
	for _, user := range []repro.Label{"u", "c", "s"} {
		for _, qsrc := range probes {
			same, err := agreeOn(db, user, qsrc)
			if err != nil {
				log.Fatal(err)
			}
			total++
			if same {
				agree++
			}
		}
	}
	fmt.Printf("Theorem 6.1 on D1: %d/%d probe queries agree.\n\n", agree, total)

	// --- Theorem 6.1 on seeded random level-stratified databases ---
	agree, total = 0, 0
	for seed := int64(0); seed < 10; seed++ {
		src := workload.ProgramSource(workload.ProgramConfig{
			Levels: 4, Facts: 14, Rules: 4, Preds: 3, Seed: seed,
		})
		rdb, err := repro.ParseMultiLog(src)
		if err != nil {
			log.Fatal(err)
		}
		for _, qsrc := range []string{
			`L[p0(K: a -C-> V)] << cau`,
			`L[p1(K: a -C-> V)] << opt`,
			`L[q0(K: d -C-> V)]`,
		} {
			same, err := agreeOn(rdb, workload.Level(3), qsrc)
			if err != nil {
				log.Fatal(err)
			}
			total++
			if same {
				agree++
			}
		}
	}
	fmt.Printf("Theorem 6.1 on 10 random databases: %d/%d probe queries agree.\n\n", agree, total)

	// --- Proposition 6.1: plain Datalog through MultiLog ---
	datalogSrc := `
		parent(adam, cain). parent(cain, enoch). parent(enoch, irad).
		anc(X, Y) :- parent(X, Y).
		anc(X, Z) :- parent(X, Y), anc(Y, Z).
	`
	classicalProg, err := repro.ParseDatalog(datalogSrc)
	if err != nil {
		log.Fatal(err)
	}
	goal, err := repro.ParseGoals(`anc(adam, W)`)
	if err != nil {
		log.Fatal(err)
	}
	mdb, err := repro.ParseMultiLog("level(system).\n" + datalogSrc)
	if err != nil {
		log.Fatal(err)
	}
	red, err := repro.ReduceMultiLog(mdb, "system")
	if err != nil {
		log.Fatal(err)
	}
	mAnswers, err := red.Query(goal)
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.EvalDatalog(classicalProg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Proposition 6.1: anc(adam, W) has %d MultiLog answers; classical model has %d facts.\n",
		len(mAnswers), model.Len())
	for _, a := range mAnswers {
		fmt.Printf("  %s\n", a.Bindings)
	}
}

// agreeOn compares the two semantics' answer sets for one query.
func agreeOn(db *repro.Database, user repro.Label, qsrc string) (bool, error) {
	q, err := repro.ParseGoals(qsrc)
	if err != nil {
		return false, err
	}
	red, err := repro.ReduceMultiLog(db, user)
	if err != nil {
		return false, err
	}
	redAns, err := red.Query(q)
	if err != nil {
		return false, err
	}
	prover, err := repro.NewProver(db, user)
	if err != nil {
		return false, err
	}
	opAns, err := prover.Prove(q, 0)
	if err != nil {
		return false, err
	}
	redSet := map[string]bool{}
	for _, a := range redAns {
		redSet[a.Bindings.String()] = true
	}
	if len(redSet) != len(opAns) {
		return false, nil
	}
	for _, a := range opAns {
		if !redSet[a.Bindings.String()] {
			return false, nil
		}
	}
	return true, nil
}
