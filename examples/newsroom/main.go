// Newsroom drives the concurrent session store: three desks with different
// clearances work on the same story database at once, the executive desk
// plants a cover story, and afterwards the audit journal explains who
// believed what — including the Jukic-Vrbsky belief labels derived from
// the trail.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/jv"
)

func main() {
	scheme, err := repro.NewScheme("story", repro.UCS(), "slug", "status", "angle")
	if err != nil {
		log.Fatal(err)
	}
	store := repro.NewStore(scheme)

	staff, err := store.Open(repro.Unclassified)
	if err != nil {
		log.Fatal(err)
	}
	editor, err := store.Open(repro.Classified)
	if err != nil {
		log.Fatal(err)
	}
	executive, err := store.Open(repro.Secret)
	if err != nil {
		log.Fatal(err)
	}

	// The desks work concurrently; the store serializes and journals.
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		staff.Insert("merger", "rumor", "tech")
		staff.Insert("election", "draft", "politics")
	}()
	go func() {
		defer wg.Done()
		editor.Insert("budget", "review", "economy")
	}()
	go func() {
		defer wg.Done()
		executive.Insert("takeover", "embargoed", "finance")
	}()
	wg.Wait()

	// The executive learns the merger is real but keeps the staff's
	// "rumor" line as a cover story: required polyinstantiation creates
	// the executive's version without touching the staff's.
	if err := executive.UpdateChain("merger", repro.Unclassified, "status", "confirmed"); err != nil {
		log.Fatal(err)
	}

	for _, sess := range []*repro.Session{staff, editor, executive} {
		fmt.Printf("--- the %s desk sees ---\n", sess.Level())
		fmt.Println(sess.View().Render())
	}

	// The cautious belief of the executive: its own confirmation wins.
	cautious, err := repro.Beta(executive.Snapshot(), repro.Secret, repro.Cautious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("executive cautious belief:")
	fmt.Println(cautious.Render())

	// The audit trail, and the JV labels it implies: the staff's "rumor"
	// becomes a U-S label — believed at U, denied at S.
	fmt.Println("audit trail:")
	fmt.Println(store.Audit())
	labelled, err := jv.FromJournal(store.Journal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived Jukic-Vrbsky labels:")
	fmt.Println(labelled.Render())
	for _, t := range labelled.Tuples {
		if t.Values[0] != "merger" {
			continue
		}
		fmt.Printf("merger (%s): staff desk reads it as %s, executive as %s\n",
			t.TC.Render(labelled.Poset),
			labelled.Interpret(t, repro.Unclassified),
			labelled.Interpret(t, repro.Secret))
	}
}
