// Hospital: a MultiLog program over a medical records database with three
// clearances (staff < doctor < board). It shows the deductive side of the
// paper — recursive rules, m-clauses deriving new classified facts from
// beliefs at lower levels, and belief speculation: a board reviewer
// theorizing about what the floor staff currently believe.
package main

import (
	"fmt"
	"log"

	"repro"
)

const program = `
% Λ — three clearances.
level(staff). level(doctor). level(board).
order(staff, doctor). order(doctor, board).

% Σ — patient records. Staff file admissions; doctors polyinstantiate the
% diagnosis when the working diagnosis is a cover story for the floor.
staff[patient(jones: name -staff-> jones; ward -staff-> w3; diagnosis -staff-> observation)].
doctor[patient(jones: name -staff-> jones; diagnosis -doctor-> oncology)].
staff[patient(riley: name -staff-> riley; ward -staff-> w1; diagnosis -staff-> fracture)].
doctor[patient(moss: name -doctor-> moss; ward -doctor-> icu; diagnosis -doctor-> cardiac)].

% A board-level derived fact: a case is escalated if the board cautiously
% believes (highest classification wins) its diagnosis is oncology.
board[review(jones: status -board-> escalated)] :-
    board[patient(jones: diagnosis -C-> oncology)] << cau.

% Π — classical ward adjacency, with recursion.
adjacent(w1, w2). adjacent(w2, w3).
reachable(X, Y) :- adjacent(X, Y).
reachable(X, Z) :- adjacent(X, Y), reachable(Y, Z).
`

func main() {
	db, err := repro.ParseMultiLog(program)
	if err != nil {
		log.Fatal(err)
	}

	// The floor staff's belief about Jones: the observation cover story.
	prover, err := repro.NewProver(db, "staff")
	if err != nil {
		log.Fatal(err)
	}
	q, err := repro.ParseGoals(`staff[patient(jones: diagnosis -C-> D)] << cau`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := prover.Prove(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("What the floor staff believe about Jones:")
	for _, a := range answers {
		fmt.Printf("  %s\n", a.Bindings)
	}

	// The board reviewer. First: own cautious belief (the doctor's
	// oncology diagnosis overrides the observation cover story).
	board, err := repro.NewProver(db, "board")
	if err != nil {
		log.Fatal(err)
	}
	q, err = repro.ParseGoals(`board[patient(jones: diagnosis -C-> D)] << cau`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err = board.Prove(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("What the board cautiously believes about Jones:")
	for _, a := range answers {
		fmt.Printf("  %s\n", a.Bindings)
	}

	// Belief speculation (§1: "it is imperative for users to theorize
	// about the belief of other users at different levels"): the board
	// asks what the STAFF level believes, without logging in as staff.
	q, err = repro.ParseGoals(`staff[patient(jones: diagnosis -C-> D)] << cau`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err = board.Prove(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The board speculating about the staff's belief:")
	for _, a := range answers {
		fmt.Printf("  %s   (the cover story is holding)\n", a.Bindings)
	}

	// The derived board fact — deduction through a b-atom body.
	q, err = repro.ParseGoals(`board[review(jones: status -board-> S)]`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err = board.Prove(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Escalation rule (fires through the cautious belief):")
	for _, a := range answers {
		fmt.Printf("  %s\n", a.Bindings)
	}

	// Classical recursion lives alongside (Proposition 6.1): wards
	// reachable from w1, via the reduction engine this time.
	red, err := repro.ReduceMultiLog(db, "board")
	if err != nil {
		log.Fatal(err)
	}
	q, err = repro.ParseGoals(`reachable(w1, W)`)
	if err != nil {
		log.Fatal(err)
	}
	redAnswers, err := red.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Wards reachable from w1 (classical recursion, reduction engine):")
	for _, a := range redAnswers {
		fmt.Printf("  %s\n", a.Bindings)
	}
}
