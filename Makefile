GO ?= go
FUZZTIME ?= 30s
# Staticcheck is pinned: version drift between developer machines and CI
# turns every upstream check change into spurious red. Bump deliberately.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test check vet race fuzz-smoke campaign chaos staticcheck \
	staticcheck-install analyzers lint analyze serve-smoke crash cluster-chaos \
	bench-smoke overload-chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. -short trims the
# differential campaign and the heavier property sweeps so the ~10x race
# overhead stays inside a CI budget; the full-size campaign runs race-free
# in `test`.
race:
	$(GO) test -race -short ./...

# fuzz-smoke runs the cross-engine differential fuzzer for a bounded time
# on top of the checked-in corpus. Any disagreement is shrunk and reported
# with a ready-to-paste regression test.
fuzz-smoke:
	$(GO) test ./internal/differential -run='^$$' -fuzz=FuzzCrossEngine -fuzztime=$(FUZZTIME)

# campaign replays the standing 200-program differential campaign (also run
# as TestCrossEngineCampaign) through the CLI.
campaign:
	$(GO) run ./cmd/difffuzz -programs 200 -v

# chaos is the fault-injection tier: every engine driven through the
# deterministic fault plans of internal/faultinject, race-enabled, asserting
# typed errors, no goroutine leaks, and deterministic truncation points.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/...

# staticcheck is a hard gate: the run fails if the tool is missing or not
# at the pinned version. Install it with `make staticcheck-install`
# (requires network; the CI vet job does exactly that).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck: not installed; run 'make staticcheck-install'"; exit 1; }
	@staticcheck -version | grep -qF "$(STATICCHECK_VERSION)" || { \
		echo "staticcheck: version mismatch: want $(STATICCHECK_VERSION), got: $$(staticcheck -version)"; exit 1; }
	staticcheck ./...

staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# analyzers runs the repo's own Go invariant checkers (tools/analyzers):
# nopanic, typederr and govcontext over every package.
analyzers:
	$(GO) run ./tools/analyzers/multichecker .

# lint runs the MultiLog/Datalog program linter over the shipped example
# corpus; warnings fail too, the corpus is meant to be pristine.
lint:
	$(GO) run ./cmd/multivet -strict examples/ cmd/multilog/testdata

# analyze runs the full pass catalog (including the whole-program flow and
# cost analyses) over the example corpus and emits the findings as a SARIF
# artifact for code-scanning upload. The corpus is clean, so the artifact
# normally carries an empty result set under the full rule catalog.
analyze:
	$(GO) run ./cmd/multivet -sarif examples/ cmd/multilog/testdata > multivet.sarif
	@echo "analyze: wrote multivet.sarif"

# serve-smoke is the end-to-end daemon gate: generate a workload program,
# start multilogd, storm it with serveload (concurrent sessions plus
# assert/retract churn), cross-check /v1/stats, verify a clean SIGTERM
# drain, then SIGKILL a durable daemon and prove the acknowledged write
# survives a restart.
serve-smoke:
	sh scripts/serve_smoke.sh

# crash runs the full kill-crash recovery matrix (crashpoint × fsync mode)
# under the race detector: multilogd as a child process, SIGKILLed by
# injected WAL faults, restarted, and checked for zero acked-write loss and
# byte-equal answers against a reference replay.
crash:
	CRASH_MATRIX=full $(GO) test -race -count=1 -run TestKillCrashRecovery ./internal/wal/crash

# cluster-chaos runs the replication fleet matrix under the race detector:
# primary + two followers + router as real child processes, the primary
# SIGKILLed mid-checkpoint and mid-stream, stream frames corrupted and
# torn, a follower partitioned and re-caught-up — checked for zero
# acked-write loss after promotion and byte-equal answers across the
# fleet for every clearance × belief mode.
cluster-chaos:
	CRASH_MATRIX=full $(GO) test -race -count=1 -run TestClusterChaos ./internal/wal/crash

# overload-chaos runs the overload-protection harness under the race
# detector: a serveload storm driven far past the admission controller's
# capacity with fault-injected latency spikes, asserting bounded
# admitted-read p99, a never-starved control plane (healthz and
# replication bypass admission), brownout stale serving, zero acked-write
# loss during overload, and zero goroutine leaks after drain.
overload-chaos:
	$(GO) test -race -count=1 \
		-run 'TestOverloadChaos|TestSustainedOverloadNoLeaks|TestBrownoutServesStale' \
		./internal/server

# bench-smoke runs the 90/10 write-mix benchmark at a short benchtime and
# gates the cached-read p50 ratio of per-predicate vs global invalidation
# through benchreport. The smoke bar (>=2x) is looser than the committed
# BENCH_incremental.json (>=5x) to absorb short-run noise; it exists to
# catch the incremental invalidation path silently degrading to global.
bench-smoke:
	sh scripts/bench_smoke.sh

# check is the CI tier: vet, the custom analyzers, staticcheck, build, the
# program linter, the SARIF analysis artifact, the race-enabled suite, the chaos tier, the crash-recovery
# matrix, the replication cluster-chaos matrix, the overload-protection
# harness, the daemon smoke, the bench smokes (write-mix, compiled,
# overload goodput), and a bounded differential fuzz smoke.
check: vet analyzers staticcheck build lint analyze race chaos crash cluster-chaos overload-chaos serve-smoke bench-smoke fuzz-smoke
	@echo "check: all gates passed"
