GO ?= go
FUZZTIME ?= 30s

.PHONY: build test check vet race fuzz-smoke campaign chaos staticcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. -short trims the
# differential campaign and the heavier property sweeps so the ~10x race
# overhead stays inside a CI budget; the full-size campaign runs race-free
# in `test`.
race:
	$(GO) test -race -short ./...

# fuzz-smoke runs the cross-engine differential fuzzer for a bounded time
# on top of the checked-in corpus. Any disagreement is shrunk and reported
# with a ready-to-paste regression test.
fuzz-smoke:
	$(GO) test ./internal/differential -run='^$$' -fuzz=FuzzCrossEngine -fuzztime=$(FUZZTIME)

# campaign replays the standing 200-program differential campaign (also run
# as TestCrossEngineCampaign) through the CLI.
campaign:
	$(GO) run ./cmd/difffuzz -programs 200 -v

# chaos is the fault-injection tier: every engine driven through the
# deterministic fault plans of internal/faultinject, race-enabled, asserting
# typed errors, no goroutine leaks, and deterministic truncation points.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/...

# staticcheck runs honnef.co/go/tools if it is on PATH; it is advisory and
# skipped (successfully) where the tool is not installed.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; \
	fi

# check is the CI tier: vet, staticcheck (if present), build, the
# race-enabled suite, the chaos tier, and a bounded differential fuzz smoke.
check: vet staticcheck build race chaos fuzz-smoke
	@echo "check: all gates passed"
