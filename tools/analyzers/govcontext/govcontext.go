// Package govcontext enforces the governed-evaluation convention: every
// exported Eval*/Prove*/Query* entry point must either take a
// context.Context itself or have a sibling *Context or *Limited variant on
// the same receiver (EvalContext, QueryLimited, ...). Evaluation can be
// unbounded — recursion through negation, polyinstantiated molecules — so
// an entry point with no cancellable form is a denial-of-service bug
// waiting for a caller. Bounded helpers that only read precomputed state
// are exempted site-by-site with //vet:allow govcontext.
package govcontext

import (
	"go/ast"
	"strings"

	"repro/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "govcontext",
	Doc:  "exported Eval/Prove/Query entry points need a Context or Limited variant",
	Run:  run,
}

// entryPrefixes marks the verbs that start evaluation — or, for Admit,
// that can park a request behind the admission controller's backlog:
// either way, an exported entry point with no cancellable form is a
// denial-of-service bug waiting for a caller.
var entryPrefixes = []string{"Eval", "Prove", "Query", "Admit"}

// key identifies a function by receiver type (empty for package level) and
// name; siblings must live on the same receiver.
type key struct {
	recv, name string
}

func run(pass *analysis.Pass) (any, error) {
	declared := map[key]bool{}
	type candidate struct {
		k    key
		file *ast.File
		decl *ast.FuncDecl
	}
	var candidates []candidate
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			k := key{recv: receiverType(fd), name: fd.Name.Name}
			declared[k] = true
			if !fd.Name.IsExported() || !isEntryPoint(k.name) {
				continue
			}
			if takesContext(fd) {
				continue // already cancellable in place
			}
			candidates = append(candidates, candidate{k, f, fd})
		}
	}
	for _, c := range candidates {
		if declared[key{c.k.recv, c.k.name + "Context"}] || declared[key{c.k.recv, c.k.name + "Limited"}] {
			continue
		}
		if analysis.Allowed(pass.Fset, c.file, c.decl.Pos(), "govcontext") {
			continue
		}
		where := c.k.name
		if c.k.recv != "" {
			where = c.k.recv + "." + where
		}
		pass.Reportf(c.decl.Pos(),
			"exported entry point %s has no %sContext or %sLimited sibling and takes no context.Context; unbounded evaluation cannot be cancelled",
			where, c.k.name, c.k.name)
	}
	return nil, nil
}

// isEntryPoint reports whether name is an Eval/Prove/Query entry point
// that is not itself the bounded variant.
func isEntryPoint(name string) bool {
	if strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Limited") {
		return false
	}
	for _, p := range entryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// receiverType returns the receiver's base type name, "" for package-level
// functions.
func receiverType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// takesContext reports whether any parameter has type context.Context.
func takesContext(fd *ast.FuncDecl) bool {
	for _, p := range fd.Type.Params.List {
		sel, ok := p.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "context" {
			return true
		}
	}
	return false
}
