package govcontext

import (
	"strings"
	"testing"

	"repro/tools/analyzers/analysis"
)

func findings(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	fs, err := analysis.RunSource(src, Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsMissingSibling(t *testing.T) {
	fs := findings(t, `package p
func EvalAll(x int) error { return nil }
`)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "EvalAll") {
		t.Fatalf("got %v, want one finding for EvalAll", fs)
	}
}

func TestContextSiblingSatisfies(t *testing.T) {
	fs := findings(t, `package p
import "context"
func Eval(x int) error { return nil }
func EvalContext(ctx context.Context, x int) error { return nil }
func Query(x int) error { return nil }
func QueryLimited(ctx context.Context, x int) error { return nil }
`)
	if len(fs) != 0 {
		t.Fatalf("Context/Limited siblings must satisfy, got %v", fs)
	}
}

func TestSiblingMustShareReceiver(t *testing.T) {
	fs := findings(t, `package p
import "context"
type A struct{}
type B struct{}
func (A) Prove(x int) error { return nil }
func (B) ProveContext(ctx context.Context, x int) error { return nil }
`)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "A.Prove") {
		t.Fatalf("a sibling on a different receiver must not satisfy, got %v", fs)
	}
}

func TestOwnContextParamSatisfies(t *testing.T) {
	fs := findings(t, `package p
import "context"
func EvalAll(ctx context.Context, x int) error { return nil }
`)
	if len(fs) != 0 {
		t.Fatalf("taking context.Context directly must satisfy, got %v", fs)
	}
}

func TestUnexportedAndVariantsSkipped(t *testing.T) {
	fs := findings(t, `package p
import "context"
func evalAll(x int) error { return nil }
func EvalAllContext(ctx context.Context, x int) error { return nil }
func QueryFooLimited(ctx context.Context, x int) error { return nil }
`)
	if len(fs) != 0 {
		t.Fatalf("unexported funcs and *Context/*Limited variants are not entry points, got %v", fs)
	}
}

func TestDirectiveSuppresses(t *testing.T) {
	fs := findings(t, `package p
// QueryCache reads a bounded in-memory table.
//vet:allow govcontext -- bounded lookup
func QueryCache(k string) string { return "" }
`)
	if len(fs) != 0 {
		t.Fatalf("directive must suppress, got %v", fs)
	}
}
