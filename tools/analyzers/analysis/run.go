package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is a rendered diagnostic: resolved position, analyzer name and
// message. Findings print in the familiar file:line:col vet format.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// PackageDirs walks root and returns every directory containing .go files,
// skipping hidden directories and testdata trees (fixtures there are often
// deliberately bad Go).
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// RunDir parses every .go file in dir (tests included, comments kept) and
// applies each analyzer to the directory's files as one pass.
func RunDir(dir string, analyzers []*Analyzer) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pass := Pass{Fset: fset, Pkg: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pass.Files = append(pass.Files, f)
	}
	var findings []Finding
	for _, a := range analyzers {
		p := pass
		p.Analyzer = a
		p.Report = func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
		if _, err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", dir, a.Name, err)
		}
	}
	return findings, nil
}

// Run applies the analyzers to every package directory under root and
// returns the findings sorted by position.
func Run(root string, analyzers []*Analyzer) ([]Finding, error) {
	dirs, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, dir := range dirs {
		fs, err := RunDir(dir, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return all, nil
}

// RunSource applies one analyzer to a single in-memory file; the test
// harness for the analyzers themselves.
func RunSource(src string, a *Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	pass := Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    []*ast.File{f},
		Pkg:      "src",
		Report: func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		},
	}
	if _, err := a.Run(&pass); err != nil {
		return nil, err
	}
	return findings, nil
}
