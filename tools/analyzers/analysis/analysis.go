// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API. The build environment has no module
// proxy access, so the real module cannot be added to go.mod; this shim
// keeps the repo's analyzers source-compatible with the upstream shape
// (Analyzer, Pass, Reportf) while running on the standard library alone.
// If x/tools ever becomes available, the analyzers port by swapping the
// import path and deleting the runner in run.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An Analyzer describes one invariant-checking pass over parsed Go files.
type Analyzer struct {
	Name string // short lower-case identifier, used in findings and directives
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) (any, error)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with the parsed files of one package
// directory and a sink for findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      string // package directory, relative to the run root
	Report   func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Test code is
// exempt from most invariants (t.Fatal replaces error returns, message
// assertions legitimately match error text).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Allowed reports whether the finding at pos is suppressed by a
// "//vet:allow <name>" directive comment on the same line or one of the
// two lines above (covering end-of-line annotations and doc-comment
// directives). The directive must name the analyzer; a bare //vet:allow
// suppresses nothing, so every suppression is attributable.
func Allowed(fset *token.FileSet, f *ast.File, pos token.Pos, name string) bool {
	want := "vet:allow " + name
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl <= line && cl >= line-2 && strings.Contains(c.Text, want) {
				return true
			}
		}
	}
	return false
}
