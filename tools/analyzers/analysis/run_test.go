package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

func TestPackageDirsSkipsTestdataAndHidden(t *testing.T) {
	root := t.TempDir()
	for _, dir := range []string{"a", "a/testdata", ".hidden", "b"} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"a/a.go", "a/testdata/bad.go", ".hidden/h.go", "b/b.go", "top.go"} {
		if err := os.WriteFile(filepath.Join(root, f), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{root, filepath.Join(root, "a"), filepath.Join(root, "b")}
	if len(dirs) != len(want) {
		t.Fatalf("PackageDirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("PackageDirs = %v, want %v", dirs, want)
		}
	}
}

func TestRunDirReportsWithPositions(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte("package p\n\nvar X = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file once",
		Run: func(p *Pass) (any, error) {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "saw %s", f.Name.Name)
			}
			return nil, nil
		},
	}
	fs, err := RunDir(dir, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Pos.Line != 1 || fs[0].Analyzer != "probe" {
		t.Fatalf("RunDir = %v, want one positioned finding from probe", fs)
	}
}

func TestAllowedWindow(t *testing.T) {
	fs, err := RunSource(`package p

//vet:allow probe -- two lines up is in the window
var A = 1

var B = 2
`, &Analyzer{
		Name: "probe",
		Doc:  "flags every value spec unless allowed",
		Run: func(p *Pass) (any, error) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if vs, ok := n.(*ast.ValueSpec); ok && !Allowed(p.Fset, f, vs.Pos(), "probe") {
						p.Reportf(vs.Pos(), "value")
					}
					return true
				})
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Pos.Line != 6 {
		t.Fatalf("findings = %v, want only the unannotated var on line 6", fs)
	}
}
