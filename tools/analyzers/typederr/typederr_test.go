package typederr

import (
	"testing"

	"repro/tools/analyzers/analysis"
)

func findings(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	fs, err := analysis.RunSource(src, Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsErrorTextComparison(t *testing.T) {
	fs := findings(t, `package p
func f(err error) bool {
	if err.Error() == "not found" {
		return true
	}
	return "gone" != err.Error()
}
`)
	if len(fs) != 2 {
		t.Fatalf("got %v, want two findings (== and !=)", fs)
	}
}

func TestFlagsStringsMatchers(t *testing.T) {
	fs := findings(t, `package p
import "strings"
func f(err error) bool {
	return strings.Contains(err.Error(), "budget") ||
		strings.HasPrefix(err.Error(), "datalog:") ||
		strings.HasSuffix("x"+err.Error(), "!")
}
`)
	if len(fs) != 3 {
		t.Fatalf("got %v, want three findings", fs)
	}
}

func TestTypedMatchingNotFlagged(t *testing.T) {
	fs := findings(t, `package p
import (
	"errors"
	"strings"
)
var sentinel = errors.New("x")
func f(err error, s string) bool {
	return errors.Is(err, sentinel) || strings.Contains(s, "plain strings are fine")
}
`)
	if len(fs) != 0 {
		t.Fatalf("errors.Is and plain string matching are fine, got %v", fs)
	}
}

func TestDirectiveSuppresses(t *testing.T) {
	fs := findings(t, `package p
func f(err error) bool {
	return err.Error() == "x" //vet:allow typederr -- interop with a fixed legacy message
}
`)
	if len(fs) != 0 {
		t.Fatalf("directive must suppress, got %v", fs)
	}
}
