// Package typederr flags string-matching on rendered error text in
// non-test code: comparing err.Error() with == or !=, or feeding it to
// strings.Contains / HasPrefix / HasSuffix / EqualFold. Error messages
// are not API — the parsers return *datalog.SyntaxError and the resource
// governor returns typed budget errors precisely so callers can use
// errors.Is / errors.As instead of scraping text that the next reword
// silently breaks.
package typederr

import (
	"go/ast"
	"go/token"

	"repro/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "match errors with errors.Is/errors.As, not by their rendered text",
	Run:  run,
}

// stringsMatchers are the strings functions whose use on error text makes
// control flow depend on message wording.
var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue // tests legitimately assert exact messages
		}
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorTextCall(n.X) || isErrorTextCall(n.Y) {
					report(pass, f, n.Pos(), "comparing err.Error() text; use errors.Is/errors.As or a typed error")
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !stringsMatchers[sel.Sel.Name] {
					return true
				}
				if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "strings" {
					return true
				}
				for _, arg := range n.Args {
					if containsErrorTextCall(arg) {
						report(pass, f, n.Pos(), "strings."+sel.Sel.Name+" on err.Error() text; use errors.Is/errors.As or a typed error")
						break
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *analysis.Pass, f *ast.File, pos token.Pos, msg string) {
	if !analysis.Allowed(pass.Fset, f, pos, "typederr") {
		pass.Reportf(pos, "%s", msg)
	}
}

// isErrorTextCall matches a zero-argument .Error() call — the canonical
// way rendered error text enters an expression. Syntactic only (the shim
// has no type information), so a non-error method named Error() also
// matches; annotate such sites with //vet:allow typederr.
func isErrorTextCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Error"
}

func containsErrorTextCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && isErrorTextCall(expr) {
			found = true
		}
		return !found
	})
	return found
}
