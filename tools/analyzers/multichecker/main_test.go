package main

import (
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/govcontext"
	"repro/tools/analyzers/nopanic"
	"repro/tools/analyzers/typederr"
)

// TestRepoIsClean runs the full analyzer suite over the repository itself:
// the invariants (no unaudited panic, no error-text matching, governed
// evaluation entry points) hold for every package, so a regression fails
// the ordinary test run, not just `make check`.
func TestRepoIsClean(t *testing.T) {
	findings, err := analysis.Run("../../..",
		[]*analysis.Analyzer{govcontext.Analyzer, nopanic.Analyzer, typederr.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSubsystemsPinnedClean pins the replication, WAL and static-analysis
// subsystems individually: these packages hold the daemon's durability and
// trust invariants, so their analyzer cleanliness is asserted by name —
// a regression names the subsystem, not just a file in a repo-wide sweep.
func TestSubsystemsPinnedClean(t *testing.T) {
	suite := []*analysis.Analyzer{govcontext.Analyzer, nopanic.Analyzer, typederr.Analyzer}
	for _, dir := range []string{
		"../../../internal/replica",
		"../../../internal/wal",
		"../../../internal/analysis",
	} {
		findings, err := analysis.RunDir(dir, suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", dir, f)
		}
	}
}
