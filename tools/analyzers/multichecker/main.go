// Command multichecker runs the repo's Go invariant analyzers — nopanic,
// typederr and govcontext — over one or more directory trees, in the
// spirit of golang.org/x/tools/go/analysis/multichecker but built on the
// stdlib-only shim in tools/analyzers/analysis (the build environment has
// no module proxy, so the upstream module cannot be imported).
//
// Usage:
//
//	multichecker [dir ...]      # default: the current directory tree
//
// Findings print as file:line:col: message [analyzer]. Exit status: 0
// clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/govcontext"
	"repro/tools/analyzers/nopanic"
	"repro/tools/analyzers/typederr"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()
	analyzers := []*analysis.Analyzer{govcontext.Analyzer, nopanic.Analyzer, typederr.Analyzer}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	exit := 0
	for _, root := range roots {
		findings, err := analysis.Run(root, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "multichecker:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			exit = 1
		}
	}
	os.Exit(exit)
}
