package nopanic

import (
	"testing"

	"repro/tools/analyzers/analysis"
)

func findings(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	fs, err := analysis.RunSource(src, Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsBarePanic(t *testing.T) {
	fs := findings(t, `package p
func Load() {
	panic("boom")
}
`)
	if len(fs) != 1 || fs[0].Pos.Line != 3 {
		t.Fatalf("got %v, want one finding on line 3", fs)
	}
}

func TestMustBuildersExempt(t *testing.T) {
	fs := findings(t, `package p
func MustLoad() { panic("boom") }
func mustInit() { panic("boom") }
func MustBuild() {
	f := func() { panic("nested is covered by the builder contract") }
	f()
}
`)
	if len(fs) != 0 {
		t.Fatalf("Must*/must* builders must be exempt, got %v", fs)
	}
}

func TestDirectiveSuppresses(t *testing.T) {
	fs := findings(t, `package p
func Load() {
	panic("boom") //vet:allow nopanic -- audited
}
func Load2() {
	//vet:allow nopanic -- audited, comment above
	panic("boom")
}
func Load3() {
	//vet:allow typederr -- wrong analyzer name does not suppress
	panic("boom")
}
`)
	if len(fs) != 1 || fs[0].Pos.Line != 11 {
		t.Fatalf("got %v, want only the wrongly-annotated panic on line 11", fs)
	}
}

func TestShadowedPanicIgnored(t *testing.T) {
	fs := findings(t, `package p
func Load() {
	panic := func(string) {}
	panic("not the builtin")
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed panic is not the builtin, got %v", fs)
	}
}
