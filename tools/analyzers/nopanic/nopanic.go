// Package nopanic flags panic calls in non-test code. The evaluation
// engines promise error returns all the way down (the resource governor
// depends on it: a panic unwinds past the partial-result bookkeeping), so
// panic is reserved for two audited shapes:
//
//   - Must* / must* builders over static data, where the panic is the
//     documented contract (MustInsert, mustRegister, ...);
//   - individually annotated sites carrying "//vet:allow nopanic" with a
//     justification, e.g. the differential harness aborting on a
//     generator bug that tests must never paper over.
package nopanic

import (
	"go/ast"
	"strings"

	"repro/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "panic is reserved for Must* builders and //vet:allow-annotated audited sites",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isMust(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" || id.Obj != nil {
					return true // not the builtin (id.Obj != nil: shadowed)
				}
				if analysis.Allowed(pass.Fset, f, call.Pos(), "nopanic") {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic outside a Must* builder; return an error, or annotate the audited site with //vet:allow nopanic -- <why>")
				return true
			})
		}
	}
	return nil, nil
}

func isMust(name string) bool {
	return strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must")
}
