// Benchmarks for every experiment in EXPERIMENTS.md. Figure benchmarks
// (Fig2..Fig12, Q1, T1, T2) measure the cost of regenerating the paper's
// artifacts; the P-series measures scaling on the workload generators and
// the ablations DESIGN.md calls out.
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/belief"
	"repro/internal/compile"
	"repro/internal/datalog"
	"repro/internal/figures"
	"repro/internal/lattice"
	"repro/internal/mls"
	"repro/internal/mlsql"
	"repro/internal/multilog"
	"repro/internal/resource"
	"repro/internal/workload"
)

// --- Figure benchmarks -------------------------------------------------

func BenchmarkFig2ViewAtU(b *testing.B) {
	m := mls.Mission()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := m.ViewAt(lattice.Unclassified, mls.ViewOptions{}); v.Len() != 5 {
			b.Fatal("wrong view")
		}
	}
}

func BenchmarkFig3ViewAtC(b *testing.B) {
	m := mls.Mission()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := m.ViewAt(lattice.Classified, mls.ViewOptions{}); v.Len() != 6 {
			b.Fatal("wrong view")
		}
	}
}

func BenchmarkFig4JVView(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := MissionJV(); len(r.Tuples) != 10 {
			b.Fatal("wrong relation")
		}
	}
}

func BenchmarkFig5Interpret(b *testing.B) {
	r := MissionJV()
	levels := []lattice.Label{lattice.Unclassified, lattice.Classified, lattice.Secret}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := r.InterpretAll(levels); len(m) != 10 {
			b.Fatal("wrong matrix")
		}
	}
}

func BenchmarkFig6Firm(b *testing.B) {
	m := mls.Mission()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := belief.FirmView(m, lattice.Classified); v.Len() != 1 {
			b.Fatal("wrong view")
		}
	}
}

func BenchmarkFig7Optimistic(b *testing.B) {
	m := mls.Mission()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := belief.OptimisticView(m, lattice.Classified); v.Len() != 6 {
			b.Fatal("wrong view")
		}
	}
}

func BenchmarkFig8Cautious(b *testing.B) {
	m := mls.Mission()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if models := belief.CautiousModels(m, lattice.Classified); len(models) != 1 {
			b.Fatal("wrong models")
		}
	}
}

func BenchmarkFig9ProofRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11ProofTree(b *testing.B) {
	db := multilog.D1()
	q := multilog.D1Query()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prover, err := multilog.NewProver(db, lattice.Classified)
		if err != nil {
			b.Fatal(err)
		}
		answers, err := prover.Prove(q, 0)
		if err != nil || len(answers) != 1 {
			b.Fatalf("answers=%d err=%v", len(answers), err)
		}
	}
}

func BenchmarkFig12Reduction(b *testing.B) {
	db := multilog.D1()
	q := multilog.D1Query()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := multilog.Reduce(db, lattice.Classified)
		if err != nil {
			b.Fatal(err)
		}
		answers, err := red.Query(q)
		if err != nil || len(answers) != 1 {
			b.Fatalf("answers=%d err=%v", len(answers), err)
		}
	}
}

func BenchmarkQ1BeliefSQL(b *testing.B) {
	e := mlsql.NewEngine()
	e.Register(mls.Mission())
	const query = `
		user context s
		select starship from mission m
		where m.starship in (select starship from mission
		                     where destination = mars and objective = spying
		                     believed cautiously)
		intersect (select starship from mission
		           where destination = mars and objective = spying
		           believed firmly)
		intersect (select starship from mission
		           where destination = mars and objective = spying
		           believed optimistically)
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Execute(query)
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("rows=%v err=%v", res, err)
		}
	}
}

func BenchmarkT1Equivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.T1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT2DatalogSpecialCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.T2(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P1: belief modes vs. relation size --------------------------------

func BenchmarkBeliefModesScaling(b *testing.B) {
	mlMode := map[belief.Mode]multilog.Mode{
		belief.Firm: multilog.ModeFir, belief.Optimistic: multilog.ModeOpt, belief.Cautious: multilog.ModeCau,
	}
	for _, n := range []int{100, 1000, 10000} {
		p := workload.Lattice(workload.ShapeChain, 4, 1)
		rel := workload.Relation(workload.RelationConfig{Poset: p, Attrs: 3, Keys: n, PolyRate: 0.3, Seed: 1})
		top := p.Maximal()[0]
		db, err := multilog.FromRelation(rel)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []belief.Mode{belief.Firm, belief.Optimistic, belief.Cautious} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := belief.BetaModels(rel, top, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
			// The same belief question routed through the MultiLog encoding
			// and the compiled engine's prepared model (see P6 for the
			// interpreter's version of this path).
			b.Run(fmt.Sprintf("n=%d/mode=%s/engine=compiled", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					red, err := multilog.Reduce(db, top)
					if err != nil {
						b.Fatal(err)
					}
					ok, err := compile.PrepareReduction(context.Background(), red, compile.Options{})
					if err != nil || !ok {
						b.Fatalf("compiled=%v err=%v", ok, err)
					}
					if _, err := red.BeliefFacts(top, mlMode[mode]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- P2: lattice shape and size -----------------------------------------

func BenchmarkLatticeShape(b *testing.B) {
	for _, shape := range []workload.LatticeShape{workload.ShapeChain, workload.ShapeDiamond, workload.ShapeDAG} {
		for _, levels := range []int{4, 16, 64} {
			p := workload.Lattice(shape, levels, 2)
			rel := workload.Relation(workload.RelationConfig{Poset: p, Attrs: 2, Keys: 500, PolyRate: 0.3, Seed: 2})
			top := p.Maximal()[0]
			b.Run(fmt.Sprintf("shape=%s/levels=%d", shape, levels), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := belief.BetaModels(rel, top, belief.Cautious); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- P3: operational vs. reduction semantics ----------------------------

func BenchmarkOperationalVsReduction(b *testing.B) {
	for _, facts := range []int{20, 80, 320} {
		src := workload.ProgramSource(workload.ProgramConfig{Levels: 4, Facts: facts, Rules: 5, Preds: 3, Seed: 3})
		db, err := multilog.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		top := workload.Level(3)
		q, err := multilog.ParseGoals(`L[p0(K: a -C-> V)] << cau`)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("facts=%d/engine=operational", facts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prover, err := multilog.NewProver(db, top)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := prover.Prove(q, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The reduction and compiled arms time the whole serving path
		// (translate + materialize the minimal model + match) and separately
		// report the model-construction phase as model-ns — the engine-swap
		// comparison the bench-smoke gate checks, with the shared translate
		// and match costs factored out.
		b.Run(fmt.Sprintf("facts=%d/engine=reduction", facts), func(b *testing.B) {
			var modelNs int64
			for i := 0; i < b.N; i++ {
				red, err := multilog.Reduce(db, top)
				if err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				if _, err := red.ModelContext(context.Background(), resource.Limits{}); err != nil {
					b.Fatal(err)
				}
				modelNs += time.Since(t0).Nanoseconds()
				if _, err := red.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(modelNs)/float64(b.N), "model-ns")
		})
		// The compiled arm still pays the full reduce + fixpoint + match per
		// iteration (the plan cache only amortizes compilation), so the ratio
		// to engine=reduction isolates the engine swap, not caching tricks.
		b.Run(fmt.Sprintf("facts=%d/engine=compiled", facts), func(b *testing.B) {
			var modelNs int64
			for i := 0; i < b.N; i++ {
				red, err := multilog.Reduce(db, top)
				if err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				ok, err := compile.PrepareReduction(context.Background(), red, compile.Options{})
				if err != nil || !ok {
					b.Fatalf("compiled=%v err=%v", ok, err)
				}
				modelNs += time.Since(t0).Nanoseconds()
				if _, _, err := red.QueryPrepared(context.Background(), q, resource.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(modelNs)/float64(b.N), "model-ns")
		})
	}
}

// --- P4: naive vs. semi-naive evaluation (ablation) ----------------------

func BenchmarkNaiveVsSemiNaive(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
		}
		prog, err := datalog.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/eval=seminaive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var e datalog.Evaluator
				if _, err := e.Eval(prog, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/eval=naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := datalog.Evaluator{Naive: true}
				if _, err := e.Eval(prog, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- P5: subsumption and σ-filter cost (ablation) ------------------------

func BenchmarkSubsumption(b *testing.B) {
	p := workload.Lattice(workload.ShapeChain, 4, 4)
	mid := workload.Level(2)
	for _, rate := range []float64{0, 0.5, 1} {
		rel := workload.Relation(workload.RelationConfig{Poset: p, Attrs: 3, Keys: 300, PolyRate: rate, Seed: 4})
		b.Run(fmt.Sprintf("poly=%.1f/subsumption=on", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.ViewAt(mid, mls.ViewOptions{})
			}
		})
		b.Run(fmt.Sprintf("poly=%.1f/subsumption=off", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.ViewAt(mid, mls.ViewOptions{NoSubsumption: true})
			}
		})
	}
}

// --- P6: MultiLog vs. hand-written relational path ------------------------
// The paper's §8 future-work comparison: the same belief question answered
// by the relational β directly and by the MultiLog engine over the encoded
// relation.

func BenchmarkMultiLogVsRelational(b *testing.B) {
	p := workload.Lattice(workload.ShapeChain, 3, 5)
	top := p.Maximal()[0]
	for _, keys := range []int{50, 200} {
		rel := workload.Relation(workload.RelationConfig{Poset: p, Attrs: 2, Keys: keys, PolyRate: 0.4, Seed: 5})
		b.Run(fmt.Sprintf("keys=%d/path=relational", keys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := belief.BetaModels(rel, top, belief.Cautious); err != nil {
					b.Fatal(err)
				}
			}
		})
		db, err := multilog.FromRelation(rel)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("keys=%d/path=multilog", keys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				red, err := multilog.Reduce(db, top)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := red.BeliefFacts(top, multilog.ModeCau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- P7: magic sets vs. plain bottom-up (ablation) ------------------------
// A bound query over a long chain: the magic rewriting restricts derivation
// to the reachable suffix, while plain evaluation materializes the full
// quadratic closure.

func BenchmarkMagicSets(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
		}
		prog, err := datalog.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		goal, err := datalog.ParseAtom(fmt.Sprintf("tc(n%d, W)", n-8))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/rewriting=magic", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subs, err := datalog.QueryMagic(prog, nil, goal)
				if err != nil || len(subs) != 8 {
					b.Fatalf("answers=%d err=%v", len(subs), err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/rewriting=none", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subs, err := datalog.Query(prog, nil, goal)
				if err != nil || len(subs) != 8 {
					b.Fatalf("answers=%d err=%v", len(subs), err)
				}
			}
		})
	}
}

// --- P8: tabling vs. magic sets vs. plain (goal direction, two ways) ------
// The same bound query answered by the dynamic (tabling) and static (magic
// rewriting) goal-directed strategies, against the plain bottom-up baseline.

func BenchmarkTabledVsMagic(b *testing.B) {
	const n = 128
	src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	goal, err := datalog.ParseAtom(fmt.Sprintf("tc(n%d, W)", n-8))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("strategy=tabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := datalog.NewTabled(prog).Prove(goal)
			if err != nil || len(subs) != 8 {
				b.Fatalf("answers=%d err=%v", len(subs), err)
			}
		}
	})
	b.Run("strategy=magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := datalog.QueryMagic(prog, nil, goal)
			if err != nil || len(subs) != 8 {
				b.Fatalf("answers=%d err=%v", len(subs), err)
			}
		}
	})
	b.Run("strategy=plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := datalog.Query(prog, nil, goal)
			if err != nil || len(subs) != 8 {
				b.Fatalf("answers=%d err=%v", len(subs), err)
			}
		}
	})
}

// --- P9: parallel semi-naive evaluation (ablation) -------------------------

func BenchmarkParallelEval(b *testing.B) {
	// A join-heavy program: same-generation over a wide tree.
	src := `
		sg(X, X) :- person(X).
		sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
	`
	id := 0
	var grow func(parent string, depth int)
	grow = func(parent string, depth int) {
		if depth == 0 {
			return
		}
		for c := 0; c < 3; c++ {
			id++
			child := fmt.Sprintf("p%d", id)
			src += fmt.Sprintf("par(%s, %s).\nperson(%s).\n", child, parent, child)
			grow(child, depth-1)
		}
	}
	src += "person(root).\n"
	grow("root", 5)
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := datalog.Evaluator{Parallel: true, Workers: workers}
				if _, err := e.Eval(prog, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var e datalog.Evaluator
			if _, err := e.Eval(prog, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Indexing ablation ---------------------------------------------------

func BenchmarkIndexing(b *testing.B) {
	src := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	for i := 0; i < 128; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("index=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var e datalog.Evaluator
			if _, err := e.Eval(prog, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := datalog.Evaluator{NoIndex: true}
			if _, err := e.Eval(prog, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
