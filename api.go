// Package repro is MultiLog: a from-scratch Go implementation of
// "Belief Reasoning in MLS Deductive Databases" (Hasan M. Jamil, SIGMOD
// 1999) — multilevel-secure relations in the Jajodia-Sandhu model, the
// parametric belief function β with firm / optimistic / cautious modes, the
// MultiLog deductive language with its operational (Figure 9) and reduction
// (Figure 12) semantics, and the §3.2 belief-SQL front-end.
//
// This package is the public API facade: it re-exports the curated surface
// of the internal packages so downstream users have a single import. The
// subsystems, bottom-up:
//
//   - security lattices (Poset, Label, the U<C<S<T builders);
//   - multilevel relations (Relation, Scheme, views-at-level, integrity,
//     polyinstantiating updates, the Mission dataset of Figure 1);
//   - the belief function β and the §3.1 views (Figures 6-8), with a
//     registry for user-defined modes;
//   - the Jukic-Vrbsky baseline (Figures 4-5);
//   - MultiLog itself: ParseMultiLog, Prover (proof trees), Reduce
//     (translation to the bundled Datalog engine plus the Figure 12
//     axioms);
//   - belief-SQL: NewSQLEngine and Execute;
//   - the serving layer: NewQueryServer embeds the cmd/multilogd daemon —
//     concurrent sessions at clearances and belief modes over shared
//     prepared reductions with an invalidating result cache — and
//     NewServerClient speaks its JSON/HTTP protocol.
//
// A five-minute tour lives in examples/quickstart; the figure-by-figure
// reproduction harness is cmd/benchfig and EXPERIMENTS.md.
package repro

import (
	"context"

	"repro/internal/belief"
	"repro/internal/datalog"
	"repro/internal/jv"
	"repro/internal/lattice"
	"repro/internal/mls"
	"repro/internal/mlsql"
	"repro/internal/multilog"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/term"
)

// Security lattices (internal/lattice).
type (
	// Label names a security access class.
	Label = lattice.Label
	// Poset is a finite partial order of labels with lub/glb and
	// dominance queries.
	Poset = lattice.Poset
)

// Canonical military levels (§2): U < C < S < T.
const (
	Unclassified = lattice.Unclassified
	Classified   = lattice.Classified
	Secret       = lattice.Secret
	TopSecret    = lattice.TopSecret
)

var (
	// NewPoset returns an empty security poset.
	NewPoset = lattice.New
	// Chain builds a total order of labels.
	Chain = lattice.Chain
	// Diamond builds the four-point lattice with two incomparable labels.
	Diamond = lattice.Diamond
	// ProductLattice builds the level × category-set access-class lattice.
	ProductLattice = lattice.Product
	// UCS returns the three-level chain U < C < S of the Mission example.
	UCS = lattice.UCS
	// Military returns the four-level chain U < C < S < T.
	Military = lattice.Military
)

// Multilevel relations (internal/mls).
type (
	// Relation is a multilevel relation instance (Definition 2.2).
	Relation = mls.Relation
	// Scheme is a multilevel relation scheme (Definition 2.1).
	Scheme = mls.Scheme
	// Tuple is a multilevel tuple with per-attribute classifications.
	Tuple = mls.Tuple
	// Value is one classified attribute cell.
	Value = mls.Value
	// ViewOptions tunes Relation.ViewAt.
	ViewOptions = mls.ViewOptions
	// Journal wraps a relation with an attributed, replayable audit trail.
	Journal = mls.Journal
	// Store is a thread-safe, journal-backed relation shared by concurrent
	// sessions pinned to clearances; Session is one such handle.
	Store   = mls.Store
	Session = mls.Session
)

var (
	// NewScheme builds a multilevel scheme; the first attribute is the
	// apparent key.
	NewScheme = mls.NewScheme
	// NewRelation returns an empty instance of a scheme.
	NewRelation = mls.NewRelation
	// V builds a classified value; NullV a classified null.
	V     = mls.V
	NullV = mls.NullV
	// Mission returns the paper's Figure 1 relation.
	Mission = mls.Mission
	// MissionByUpdates replays the update history that produces the
	// surprise stories t4/t5.
	MissionByUpdates = mls.MissionByUpdates
	// ParseRelation reads a relation from the text format used by the
	// command-line tools; FormatRelation writes it.
	ParseRelation  = mls.ParseRelation
	FormatRelation = mls.FormatRelation
	// NewJournal starts an audited relation over a scheme.
	NewJournal = mls.NewJournal
	// NewStore starts a concurrent, journal-backed relation.
	NewStore = mls.NewStore
)

// Belief reasoning (internal/belief).
type (
	// BeliefMode names a belief mode (fir / opt / cau or user-defined).
	BeliefMode = belief.Mode
	// ModeRegistry maps mode names to belief functions (§7).
	ModeRegistry = belief.Registry
)

// The paper's three modes (Definition 3.1).
const (
	Firm       = belief.Firm
	Optimistic = belief.Optimistic
	Cautious   = belief.Cautious
)

var (
	// Beta is the parametric belief function β (Definition 3.1).
	Beta = belief.Beta
	// BetaModels is Beta returning every model of an ambiguous cautious
	// merge.
	BetaModels = belief.BetaModels
	// FirmView, OptimisticView and CautiousView are the §3.1 intuitive
	// views (Figures 6-8), computed over the σ-filtered view and thus
	// including the surprise stories β suppresses.
	FirmView       = belief.FirmView
	OptimisticView = belief.OptimisticView
	CautiousView   = belief.CautiousView
	CautiousModels = belief.CautiousModels
	// NewModeRegistry returns a registry with the built-in and Cuppens
	// modes.
	NewModeRegistry = belief.NewRegistry
	// WithoutDoubt intersects all three modes — the §3.2 "without any
	// doubt" query as a library call.
	WithoutDoubt = belief.WithoutDoubt
)

// The Jukic-Vrbsky baseline (internal/jv).
type (
	// JVRelation is a relation under the Jukic-Vrbsky belief labels [16].
	JVRelation = jv.Relation
	// JVStatus is a fixed interpretation (true / invisible / irrelevant /
	// cover story / mirage).
	JVStatus = jv.Status
)

var (
	// MissionJV returns Figure 4.
	MissionJV = jv.MissionJV
)

// MultiLog (internal/multilog).
type (
	// Database is a MultiLog database Δ = ⟨Λ, Σ, Π, Q⟩.
	Database = multilog.Database
	// Prover is the goal-directed operational interpreter (Figure 9).
	Prover = multilog.Prover
	// Reduction is a database reduced to the classical engine (§6).
	Reduction = multilog.Reduction
	// ProofNode is a node of a MultiLog proof tree (§5.4).
	ProofNode = multilog.ProofNode
	// MultiLogOptions tunes the reduction (Figure 13 FILTER rules).
	MultiLogOptions = multilog.Options
)

var (
	// ParseMultiLog parses MultiLog source into a database.
	ParseMultiLog = multilog.Parse
	// ParseGoals parses a conjunctive query body.
	ParseGoals = multilog.ParseGoals
	// NewProver builds the operational prover at a user level.
	NewProver = multilog.NewProver
	// ReduceMultiLog translates a database for a user level (τ plus the
	// Figure 12 axioms).
	ReduceMultiLog = multilog.Reduce
	// ReduceMultiLogOpts is ReduceMultiLog with options.
	ReduceMultiLogOpts = multilog.ReduceOpts
	// D1 returns the paper's Figure 10 database; D1Query the Example 5.2
	// query.
	D1      = multilog.D1
	D1Query = multilog.D1Query
	// FromRelation encodes an MLS relation as MultiLog facts
	// (Example 5.1).
	FromRelation = multilog.FromRelation
)

// The classical Datalog substrate (internal/datalog), exposed because
// Proposition 6.1 makes it part of the story: Datalog is the special case
// of MultiLog with empty security components.
type (
	// DatalogProgram is a classical program with stratified negation.
	DatalogProgram = datalog.Program
	// DatalogStore holds ground facts.
	DatalogStore = datalog.Store
)

var (
	// ParseDatalog parses classical Datalog source.
	ParseDatalog = datalog.Parse
	// EvalDatalog computes the minimal model of a stratified program.
	EvalDatalog = datalog.Eval
	// QueryDatalog evaluates and matches a goal.
	QueryDatalog = datalog.Query
)

// Belief-SQL (internal/mlsql).
type (
	// SQLEngine executes §3.2 belief-SQL statements.
	SQLEngine = mlsql.Engine
	// SQLResult is a query result.
	SQLResult = mlsql.Result
)

var (
	// NewSQLEngine returns an engine with the built-in belief modes.
	NewSQLEngine = mlsql.NewEngine
)

// Resource governance (internal/resource). Every engine in the module is
// deadline-safe: the *Context entry points below bound evaluation by a
// context (wall clock) and an EvalLimits (fact / step / memory budgets) and
// come back with a typed error plus partial statistics instead of hanging.
// The facade wrappers additionally contain panics: a bug in an engine
// surfaces as *EvalInternalError, never a process crash.
type (
	// EvalLimits bounds an evaluation; the zero value is unlimited.
	EvalLimits = resource.Limits
	// EvalStats is the partial-progress report of a governed evaluation.
	EvalStats = resource.Stats
	// BudgetError reports an exhausted fact/step/memory budget (errors.As).
	BudgetError = resource.ErrBudgetExceeded
	// EvalInternalError is a contained engine panic (errors.As).
	EvalInternalError = resource.InternalError
	// Subst is a substitution: one answer's variable bindings.
	Subst = term.Subst
	// MultiLogQuery is a parsed conjunctive MultiLog query.
	MultiLogQuery = multilog.Query
)

var (
	// ErrEvalCanceled reports a canceled or expired evaluation (errors.Is).
	ErrEvalCanceled = resource.ErrCanceled
	// IsLimitError reports whether an error is a graceful resource stop
	// (cancellation or budget exhaustion); such errors come with partial
	// results.
	IsLimitError = resource.IsLimit
)

// EvalDatalogContext computes the minimal model of a stratified Datalog
// program under ctx and limits. On a limit stop it returns the partial model
// alongside the error; the stats always report the work done.
func EvalDatalogContext(ctx context.Context, p *DatalogProgram, edb *DatalogStore, limits EvalLimits) (model *DatalogStore, stats EvalStats, err error) {
	defer resource.Protect("repro.EvalDatalogContext", &err)
	model, ds, err := datalog.EvalLimited(ctx, p, edb, limits)
	return model, ds.Resource, err
}

// QueryDatalogContext evaluates the program under ctx and limits and matches
// goal against the (possibly partial) model.
func QueryDatalogContext(ctx context.Context, p *DatalogProgram, edb *DatalogStore, goal datalog.Atom, limits EvalLimits) (answers []Subst, stats EvalStats, err error) {
	defer resource.Protect("repro.QueryDatalogContext", &err)
	answers, ds, err := datalog.QueryLimited(ctx, p, edb, goal, limits)
	return answers, ds.Resource, err
}

// ProveMultiLogContext runs the Figure 9 operational prover at a user level
// under ctx and limits. On a limit stop it returns the answers found so far
// alongside the error.
func ProveMultiLogContext(ctx context.Context, db *Database, user Label, q MultiLogQuery, limits EvalLimits) (answers []multilog.ProofAnswer, stats EvalStats, err error) {
	defer resource.Protect("repro.ProveMultiLogContext", &err)
	pr, err := multilog.NewProver(db, user)
	if err != nil {
		return nil, EvalStats{}, err
	}
	pr.Limits = limits
	answers, err = pr.ProveContext(ctx, q, 0)
	return answers, pr.LastStats, err
}

// QueryMultiLogContext answers a query through the Figure 12 reduction under
// ctx and limits — both the bottom-up model construction and the matching
// phase are governed.
func QueryMultiLogContext(ctx context.Context, db *Database, user Label, q MultiLogQuery, limits EvalLimits) (answers []multilog.Answer, err error) {
	defer resource.Protect("repro.QueryMultiLogContext", &err)
	red, err := multilog.Reduce(db, user)
	if err != nil {
		return nil, err
	}
	return red.QueryContext(ctx, q, limits)
}

// ExecuteSQLContext parses and runs a belief-SQL statement under ctx and
// limits.
func ExecuteSQLContext(ctx context.Context, e *SQLEngine, src string, limits EvalLimits) (res *SQLResult, stats EvalStats, err error) {
	defer resource.Protect("repro.ExecuteSQLContext", &err)
	return e.ExecuteContext(ctx, src, limits)
}

// The serving layer (internal/server): the cmd/multilogd daemon as a
// library. A QueryServer loads programs once (parse, lint, reduce), then
// answers concurrent sessions — each cleared at a label with a default
// belief mode — from shared prepared reductions behind an epoch-keyed,
// invalidating result cache, governed per request.
type (
	// QueryServer is an embeddable multilogd: Load programs, then serve
	// Handler (or ListenAndServe for the drain-on-signal lifecycle).
	QueryServer = server.Server
	// QueryServerConfig tunes session caps, cache size, deadlines and
	// per-request budgets; the zero value serves with sane defaults.
	QueryServerConfig = server.Config
	// ServerClient speaks the multilogd JSON/HTTP protocol.
	ServerClient = server.Client
	// ServerRemoteError is a non-2xx protocol reply with a stable machine
	// code (errors.As).
	ServerRemoteError = server.RemoteError
)

var (
	// NewQueryServer builds an empty query server.
	NewQueryServer = server.New
	// NewServerClient returns a client for a multilogd base URL.
	NewServerClient = server.NewClient
)
